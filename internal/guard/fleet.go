// Fleet-scale enforcement (DESIGN.md §10): one shared, immutable label
// artifact per protected binary serving any number of per-process
// guards. The per-process enforcement state shrinks to the window
// cursor, the (possibly shared) approval cache, and the stats block —
// everything heavyweight (address space, O-CFG, the flat ITC-CFG
// arenas) is referenced by pointer from one Binary, never copied.
//
// This is the paper's end goal at system scale: training is per-binary,
// so its product — the credit-labeled ITC-CFG — is per-binary too, and
// the FGITCFL1 flat encoding (itc.Flat) doubles as the zero-copy wire
// and in-memory form. A fleet controller loads a few dozen artifacts
// and protects ten thousand processes with them.

package guard

import (
	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/module"
	"flowguard/internal/trace/ipt"
)

// Binary is the shared per-binary enforcement state: everything that is
// identical across every process running the same executable image.
// All fields are immutable after construction except Appr, which is the
// binary's pooled approval cache (internally synchronized). A Binary is
// safe for concurrent use by any number of guards.
type Binary struct {
	// AS is the canonical loaded address space of the binary. Processes
	// replaying recorded traces share it read-only; a live forked
	// process with its own (cloned) address space passes that clone to
	// ForkGuard instead.
	AS *module.AddressSpace
	// OCFG is the conservative O-CFG (slow-path precision source).
	OCFG *cfg.Graph
	// Art is the shared immutable label artifact every guard of this
	// binary probes. Exactly one per binary — the no-copy pin in the
	// fleet tests asserts pointer identity across all its guards.
	Art *itc.Artifact
	// Appr is the binary-wide pooled approval cache: a clean slow-path
	// verdict in any process serves every sibling's fast path.
	Appr *ApprovalCache
}

// NewBinary bundles the shared state of one protected binary. The
// artifact is typically graph.Artifact() after training, or
// itc.ArtifactFromFlat over shipped FGITCFL1 bytes.
func NewBinary(as *module.AddressSpace, ocfg *cfg.Graph, art *itc.Artifact) *Binary {
	return &Binary{AS: as, OCFG: ocfg, Art: art, Appr: NewApprovalCache()}
}

// NewGuard builds a per-process guard over the binary's shared state
// and the process's own tracer. The guard holds pointers into the
// Binary — no artifact bytes, no graph tables, no approval map of its
// own — so its marginal footprint is the Guard struct plus the lazily
// grown window buffer.
func (b *Binary) NewGuard(tr *ipt.Tracer, pol Policy) *Guard {
	return &Guard{
		AS: b.AS, OCFG: b.OCFG, Tracer: tr, Policy: pol,
		art:  b.Art,
		appr: b.Appr,
	}
}

// UseArtifact switches an existing guard's fast path to a shared
// immutable artifact (tests and migration paths; fleet guards get one
// from Binary.NewGuard). Call before checking starts.
func (g *Guard) UseArtifact(a *itc.Artifact) { g.art = a }

// Artifact returns the shared artifact the guard probes, or nil for a
// live-graph guard.
func (g *Guard) Artifact() *itc.Artifact { return g.art }

// ForkGuard builds the guard of a forked child: it inherits the
// parent's trained credit (the shared artifact or live graph, by
// pointer) and the parent's approvals (the live cache itself — an edge
// either process approves serves both, exactly like ShareApprovals
// siblings). The child gets a fresh window cursor over its own tracer
// and a fresh stats block; as points at the child's own address space
// (nil shares the parent's, the right choice for replayed streams).
//
// Conformance contract (pinned by the fork-inheritance property test):
// with the parent quiescent after the fork, the child's verdicts over
// any replayed trace are byte-identical to those of a fresh process
// built with the parent's Approvals().Clone() taken at fork time.
func ForkGuard(parent *Guard, as *module.AddressSpace, tr *ipt.Tracer) *Guard {
	if as == nil {
		as = parent.AS
	}
	g := &Guard{
		AS: as, OCFG: parent.OCFG, ITC: parent.ITC, Tracer: tr,
		Policy: parent.Policy,
		art:    parent.art,
		appr:   parent.appr,
	}
	g.Stats.ForkInherits = 1
	return g
}

// lookupEdge dispatches the full fast-path edge check to the shared
// artifact when the guard has one, else to the live graph.
//
//fg:hotpath
func (g *Guard) lookupEdge(src, dst, sig uint64) itc.EdgeLabel {
	if g.art != nil {
		return g.art.Lookup(src, dst, sig)
	}
	return g.ITC.Lookup(src, dst, sig)
}

// cacheLookup dispatches the high-credit cache probe.
//
//fg:hotpath
func (g *Guard) cacheLookup(src, dst, sig uint64) (hit, sigMatch bool) {
	if g.art != nil {
		return g.art.CacheLookup(src, dst, sig)
	}
	return g.ITC.CacheLookup(src, dst, sig)
}

// pathTrained dispatches the path-sensitive probe.
//
//fg:hotpath
func (g *Guard) pathTrained(a, b, c uint64) bool {
	if g.art != nil {
		return g.art.PathTrained(itc.PathKey(a, b, c))
	}
	return g.ITC.PathTrained(a, b, c)
}
