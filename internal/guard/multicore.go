package guard

// Multicore protection (DESIGN.md §11): on a preemptive multi-core
// machine every core has ONE trace unit shared by every task scheduled
// onto it, not one per process. The module therefore runs a tracer per
// core with CR3 filtering OFF, context-switches per-task packetization
// state at every slice boundary (ipt.TraceContext), and reconstructs
// per-process — in fact per-thread — streams from the shared per-core
// buffers with an ipt.Demux keyed by the PIP/CR3 breadcrumbs the switch
// path leaves. The guards themselves are unchanged: each check runs over
// the calling thread's reconstructed window exactly as if a dedicated
// CR3-filtered tracer had produced it, which is the byte-identity
// property the demux round-trip suite verifies.

import (
	"errors"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// mcCoreRegion sizes each shared per-core ToPA region. The module pumps
// every core at every slice boundary and every endpoint, so a region
// only has to absorb one quantum's worth of packets; 64 KiB leaves two
// orders of magnitude of headroom and never wraps between pumps.
const mcCoreRegion = 64 << 10

// mcMode is the MODE payload written with every context-switch marker
// (64-bit execution; the demux strips it either way).
const mcMode = 1

// taskTrace is the module's per-task trace bookkeeping: the saved
// packetization context while the task is off-core, and — for tasks of
// protected processes — the per-thread check state whose ToPA is the
// demux binding for the process's CR3 while this task runs.
type taskTrace struct {
	ctx ipt.TraceContext
	cr3 uint64
	g   *Guard       // nil for unprotected processes
	ts  *ThreadState // nil for unprotected processes
}

// coreTrace is one simulated core's trace unit: the shared tracer, its
// ToPA, the demux read cursor into it, and the task currently on-core.
type coreTrace struct {
	tr      *ipt.Tracer
	topa    *ipt.ToPA
	pos     uint64
	cur     *taskTrace
	scratch []byte
}

// multicore holds the module's preemptive-world state.
type multicore struct {
	demux   *ipt.Demux
	cores   []coreTrace
	tasks   map[*kernelsim.Thread]*taskTrace
	curCore int
}

// EnableMulticore switches the module into preemptive multi-core mode
// with the given number of simulated cores: per-core tracers without CR3
// filtering, a demux splitting their shared streams back into per-thread
// windows, and the kernel's OnCoreSwitch/OnAsyncFlow hooks wired to the
// module. Call once, before any ProtectMulticore, before the workload
// runs (kernelsim.RunMulticore is the matching scheduler).
func (m *KernelModule) EnableMulticore(cores int) error {
	if cores < 1 {
		return errors.New("guard: multicore needs at least one core")
	}
	mc := &multicore{
		demux: ipt.NewDemux(cores),
		cores: make([]coreTrace, cores),
		tasks: make(map[*kernelsim.Thread]*taskTrace),
	}
	for i := range mc.cores {
		topa := ipt.NewToPA(mcCoreRegion, mcCoreRegion)
		tr := ipt.NewTracer(topa)
		// Per-core IA32_RTIT_CTL: TraceEn+BranchEn+User+ToPA, CR3Filter
		// OFF — the shared unit traces whatever the scheduler runs, and
		// attribution is the demux's job (§6 suggestion 2 inverted).
		ctl := ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
			return err
		}
		mc.cores[i] = coreTrace{tr: tr, topa: topa}
	}
	mc.demux.OnLoss = func(cr3 uint64) {
		m.mu.Lock()
		g := m.guards[cr3]
		m.mu.Unlock()
		if g != nil {
			g.NoteStreamLoss()
		}
	}
	m.mc = mc
	m.K.OnCoreSwitch = m.onCoreSwitch
	m.K.OnAsyncFlow = m.onAsyncFlow
	return nil
}

// ProtectMulticore protects a process in multicore mode. The per-process
// tracer is virtual — its MSRs are never programmed, so it emits nothing
// and Flush is a no-op; the process's packets reach the guard through
// the demux, which routes the shared per-core streams into the bound
// per-thread ToPAs. The guard's own ToPA doubles as the main thread's
// sink. CheckOnPMI is not wired: the shared core buffers are pumped
// every slice, so the per-process buffer-full fallback has no analogue.
func (m *KernelModule) ProtectMulticore(p *kernelsim.Process, ocfg *cfg.Graph, ig *itc.Graph, pol Policy) (*Guard, error) {
	if m.mc == nil {
		return nil, errors.New("guard: ProtectMulticore before EnableMulticore")
	}
	topa := ipt.NewToPA(regionSizes()...)
	tr := ipt.NewTracer(topa)
	g := New(p.AS, ocfg, ig, tr, pol)
	m.mu.Lock()
	m.guards[p.CR3] = g
	if pol.Async && m.apool == nil {
		m.apool = NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
		m.ownsAPool = true
	}
	apool := m.apool
	m.mu.Unlock()
	if pol.Async && apool != nil {
		g.EnableAsync(apool)
	}
	main := p.CurrentThread()
	if main == nil {
		return nil, errors.New("guard: ProtectMulticore on an unspawned process")
	}
	m.mc.tasks[main] = &taskTrace{cr3: p.CR3, g: g, ts: NewThreadState(topa)}
	m.mc.demux.Bind(p.CR3, topa)
	for _, sysno := range pol.Endpoints {
		if m.installed[sysno] {
			continue
		}
		m.installed[sysno] = true
		m.K.Intercept(sysno, m.onEndpoint)
	}
	return g, nil
}

// mcProtectForked is ProtectForked's multicore form: the child inherits
// the parent's trained credit and approvals via ForkGuard, but its
// tracer is virtual and its main thread's sink is registered with the
// demux instead of a dedicated trace unit.
func (m *KernelModule) mcProtectForked(parent *Guard, child *kernelsim.Process) (*Guard, error) {
	topa := ipt.NewToPA(regionSizes()...)
	tr := ipt.NewTracer(topa)
	g := ForkGuard(parent, child.AS, tr)
	m.mu.Lock()
	m.guards[child.CR3] = g
	apool := m.apool
	m.mu.Unlock()
	if parent.Policy.Async && apool != nil {
		g.EnableAsync(apool)
	}
	main := child.CurrentThread()
	if main == nil {
		return nil, errors.New("guard: fork of an unspawned process")
	}
	m.mc.tasks[main] = &taskTrace{cr3: child.CR3, g: g, ts: NewThreadState(topa)}
	m.mc.demux.Bind(child.CR3, topa)
	return g, nil
}

// pumpAll drains every core's ToPA through the demux under the current
// bindings. Called at every slice boundary (before rebinding, so the
// outgoing slices' bytes go to the threads that produced them) and at
// every endpoint check (after flushing the running core).
func (m *KernelModule) pumpAll() {
	mc := m.mc
	for i := range mc.cores {
		ct := &mc.cores[i]
		chunk, ok := ct.topa.AppendSince(ct.scratch[:0], ct.pos)
		if !ok {
			// The shared buffer wrapped past the cursor — a pump gap the
			// sizing is meant to preclude. The span is gone for whichever
			// task was on-core; fail toward loss, never silence.
			if ct.cur != nil && ct.cur.g != nil {
				ct.cur.g.NoteStreamLoss()
			}
			ct.pos = ct.topa.TotalWritten()
			continue
		}
		if len(chunk) > 0 {
			mc.demux.Feed(i, chunk)
			ct.pos += uint64(len(chunk))
		}
		ct.scratch = chunk[:0]
	}
}

// onCoreSwitch is the kernel's slice-boundary hook: route everything the
// previous slices produced, then context-switch the core's trace unit to
// the incoming task — save the outgoing packetization state, restore the
// incoming one, emit the PIP/MODE marker — and point the demux binding
// for the process's CR3 at the incoming thread's sink.
func (m *KernelModule) onCoreSwitch(core int, p *kernelsim.Process, t *kernelsim.Thread) {
	mc := m.mc
	if mc == nil || core < 0 || core >= len(mc.cores) {
		return
	}
	m.pumpAll()
	tt := mc.tasks[t]
	if tt == nil {
		tt = &taskTrace{cr3: p.CR3}
		m.mu.Lock()
		g := m.guards[p.CR3]
		m.mu.Unlock()
		if g != nil {
			// A clone of a protected process seen for the first time:
			// it gets its own stream state, checked against the shared
			// guard.
			tt.g = g
			tt.ts = NewThreadState(ipt.NewToPA(regionSizes()...))
		}
		mc.tasks[t] = tt
	}
	if tt.ts != nil {
		mc.demux.Bind(tt.cr3, tt.ts.Out)
	}
	ct := &mc.cores[core]
	if ct.cur != tt {
		// A task that keeps its core is not a context switch: no state to
		// swap, no marker (saving into ct.cur.ctx while restoring a stale
		// copy of the same struct would regress the live context).
		var prev *ipt.TraceContext
		if ct.cur != nil {
			prev = &ct.cur.ctx
		}
		ct.tr.SwitchTask(prev, tt.ctx, tt.cr3, mcMode)
		ct.cur = tt
	}
	mc.curCore = core
	t.CPU.Branch = ct.tr
}

// onAsyncFlow renders a kernel-performed control transfer (signal
// delivery, sigreturn) into the stream of whichever trace unit is
// watching the process: the current core's shared tracer in multicore
// mode, the process's dedicated tracer otherwise.
func (m *KernelModule) onAsyncFlow(p *kernelsim.Process, from, to uint64) {
	if m.mc != nil {
		m.mc.cores[m.mc.curCore].tr.AsyncEvent(from, to)
		return
	}
	m.mu.Lock()
	g := m.guards[p.CR3]
	m.mu.Unlock()
	if g != nil {
		g.Tracer.AsyncEvent(from, to)
	}
}

// mcCheck runs an endpoint check in multicore mode: flush the running
// core's pending TNT bits, route every core's bytes, then check the
// calling thread's reconstructed window. The CheckPool is bypassed —
// the scheduler is serial, so there is no concurrency to bound.
func (m *KernelModule) mcCheck(p *kernelsim.Process, g *Guard) Result {
	mc := m.mc
	ct := &mc.cores[mc.curCore]
	ct.tr.Flush()
	m.pumpAll()
	tt := ct.cur
	if tt == nil || tt.ts == nil || tt.g != g {
		// No slice context (endpoint outside RunMulticore): fall back to
		// the process-level check over the virtual tracer.
		return g.Check()
	}
	return g.CheckThread(tt.ts)
}

// CheckCurrent runs one flow check for the process exactly as the
// module's own endpoint interceptor would — through mcCheck in multicore
// mode, through the pool otherwise. It exists for harness diff runners
// that install their own interceptors (Policy.Endpoints left empty) so
// they can compare the module verdict against an oracle at each
// endpoint. The bool is false when the process is unprotected.
func (m *KernelModule) CheckCurrent(p *kernelsim.Process) (Result, bool) {
	m.mu.Lock()
	g, ok := m.guards[p.CR3]
	m.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	if m.mc != nil {
		return m.mcCheck(p, g), true
	}
	return m.check(g), true
}

// ThreadSink returns the demuxed per-thread trace sink for t, or nil
// when t is unknown or its process unprotected. Harness oracles replay a
// thread's reconstructed stream from it.
func (m *KernelModule) ThreadSink(t *kernelsim.Thread) *ipt.ToPA {
	if m.mc == nil || t == nil {
		return nil
	}
	tt := m.mc.tasks[t]
	if tt == nil || tt.ts == nil {
		return nil
	}
	return tt.ts.Out
}

// InjectCoreFaults wires a write-fault injector into every shared
// per-core tracer (chaos testing of the demux transport: slice-boundary
// marker loss and truncation). The per-process virtual tracers emit
// nothing and are left untouched. Call after EnableMulticore, before the
// workload runs.
func (m *KernelModule) InjectCoreFaults(f ipt.WriteFault) {
	if m.mc == nil {
		return
	}
	for i := range m.mc.cores {
		m.mc.cores[i].tr.Fault = f
	}
}

// FlushMulticore drains whatever the cores still hold through the demux
// (end-of-run readout before inspecting guard state in tests).
func (m *KernelModule) FlushMulticore() {
	if m.mc == nil {
		return
	}
	for i := range m.mc.cores {
		m.mc.cores[i].tr.Flush()
	}
	m.pumpAll()
}

// DemuxStats exposes the demux counters (nil outside multicore mode).
func (m *KernelModule) DemuxStats() *ipt.Demux {
	if m.mc == nil {
		return nil
	}
	return m.mc.demux
}
