package guard

import (
	"testing"
)

// TestApprovalCacheSyncGen pins the generation contract: SyncGen at an
// unchanged generation is a no-op, and a generation advance flushes
// every stripe — edges and paths alike — before new verdicts accumulate
// at the new generation.
func TestApprovalCacheSyncGen(t *testing.T) {
	c := NewApprovalCache()
	e := edgeKey{src: 0x401000, dst: 0x402000, sig: 0x9e3779b97f4a7c15}
	const path = uint64(0xdeadbeefcafe)

	c.SyncGen(1)
	c.ApproveEdge(e)
	c.ApprovePath(path)
	if !c.ApprovedEdge(e) || !c.ApprovedPath(path) {
		t.Fatal("approvals not stored")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len() = %d after one edge approval", n)
	}

	// Unchanged generation: the steady state must keep every verdict.
	c.SyncGen(1)
	if !c.ApprovedEdge(e) || !c.ApprovedPath(path) {
		t.Fatal("SyncGen at an unchanged generation flushed the cache")
	}

	// Populate every stripe so the flush is exercised across all of
	// them, not just the one the first key happened to hash to.
	for i := 0; i < 8*approvalStripes; i++ {
		c.ApproveEdge(edgeKey{src: uint64(0x400000 + i), dst: uint64(0x500000 + 7*i), sig: uint64(i)})
		c.ApprovePath(uint64(0x1000 + i))
	}
	if n := c.Len(); n != 1+8*approvalStripes {
		t.Fatalf("Len() = %d, want %d", n, 1+8*approvalStripes)
	}

	// A generation advance invalidates every cached verdict: they were
	// earned against a superseded label snapshot.
	c.SyncGen(2)
	if c.ApprovedEdge(e) || c.ApprovedPath(path) {
		t.Fatal("label-generation advance did not flush cached approvals")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("Len() = %d after flush, want 0", n)
	}

	// Verdicts re-earned at the new generation survive further syncs.
	c.ApproveEdge(e)
	c.SyncGen(2)
	if !c.ApprovedEdge(e) {
		t.Fatal("re-earned approval flushed at its own generation")
	}
}

// TestApprovalCacheSyncGenConcurrent hammers SyncGen from racing
// checkers (run under -race): whatever interleaving wins, the cache must
// settle at the newest generation with no stale verdicts resurfacing.
func TestApprovalCacheSyncGenConcurrent(t *testing.T) {
	c := NewApprovalCache()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for gen := uint64(1); gen <= 50; gen++ {
				c.SyncGen(gen)
				c.ApproveEdge(edgeKey{src: uint64(w), dst: gen, sig: 0})
				c.ApprovedEdge(edgeKey{src: uint64(w), dst: gen, sig: 0})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	c.SyncGen(51)
	if n := c.Len(); n != 0 {
		t.Fatalf("Len() = %d after final flush, want 0", n)
	}
	if got := c.gen.Load(); got != 51 {
		t.Fatalf("cache generation = %d, want 51", got)
	}
}
