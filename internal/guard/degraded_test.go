package guard

// White-box tests of the trace-health classification and the degraded-
// mode policy responses, using targeted write-fault doubles on the
// synthetic-branch window fixture. End-to-end per-mode tests against
// the real server and attacks live in degraded_modes_test.go; the chaos
// soak in internal/faults sweeps the whole space.

import (
	"errors"
	"testing"

	"flowguard/internal/trace/ipt"
)

// onceFault appends extra to the payload of exactly one tracer write.
type onceFault struct {
	extra []byte
	fired bool
}

func (f *onceFault) Corrupt(p []byte, off uint64) []byte {
	if f.fired {
		return p
	}
	f.fired = true
	return append(append([]byte(nil), p...), f.extra...)
}

var ovfBytes = []byte{0x02, 0xF3}

func TestWindowHealthResyncedOnOVF(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 4
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	for i := 0; i < 10; i++ {
		f.emitTIP(f.exec)
	}
	if _, _, _, health, err := f.g.window(); err != nil || health != HealthClean {
		t.Fatalf("pre-fault window: health %v, err %v", health, err)
	}

	f.tr.Fault = &onceFault{extra: ovfBytes}
	f.emitTIP(f.exec) // this write carries the injected OVF
	f.emitTIP(f.exec)
	_, _, _, health, err := f.g.window()
	if err != nil {
		t.Fatal(err)
	}
	if health != HealthResynced {
		t.Fatalf("post-OVF health = %v, want resynced", health)
	}
	if f.g.Stats.Overflows != 1 {
		t.Fatalf("Stats.Overflows = %d, want 1", f.g.Stats.Overflows)
	}

	// The overflow stays unresynchronized — and the health degraded —
	// until the next PSB; the default period is 2048 bytes, so a couple
	// more records do not clear it.
	f.emitTIP(f.exec)
	if _, _, _, health, _ := f.g.window(); health != HealthResynced {
		t.Fatalf("health before resynchronizing PSB = %v, want resynced", health)
	}

	// Crossing the PSB period resynchronizes: health returns to clean
	// with no new overflow counted. (Repeated same-target TIPs compress
	// to ~1 byte, so this spans the 2048-byte default period.)
	for i := 0; i < 3000; i++ {
		f.emitTIP(f.exec)
	}
	_, _, _, health, err = f.g.window()
	if err != nil {
		t.Fatal(err)
	}
	if health != HealthClean {
		t.Fatalf("post-PSB health = %v, want clean again", health)
	}
	if f.g.Stats.Overflows != 1 {
		t.Fatalf("Stats.Overflows = %d after resync, want still 1", f.g.Stats.Overflows)
	}
}

func TestWindowHealthGapWhenWrapOutrunsSyncPoints(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 4
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	// Tiny buffer, and no recurring sync points: once the initial PSB
	// wraps away, nothing resident can be attributed.
	f.tr.Out = ipt.NewToPA(256, 256)
	f.tr.PSBPeriod = 1 << 30
	for i := 0; i < 2000; i++ {
		f.emitTIP(f.exec)
	}
	if !f.tr.Out.Wrapped() {
		t.Fatal("setup: buffer did not wrap")
	}
	tips, _, _, health, err := f.g.window()
	if err != nil {
		t.Fatal(err)
	}
	if health != HealthGap {
		t.Fatalf("health = %v, want gap", health)
	}
	if len(tips) != 0 {
		t.Fatalf("gap window returned %d unattributable records", len(tips))
	}
	if f.g.Stats.Gaps != 1 {
		t.Fatalf("Stats.Gaps = %d, want 1", f.g.Stats.Gaps)
	}
}

func TestWindowHealthMalformedDropsCache(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 4
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	for i := 0; i < 10; i++ {
		f.emitTIP(f.exec)
	}
	if _, _, _, _, err := f.g.window(); err != nil {
		t.Fatal(err)
	}
	f.tr.Fault = &onceFault{extra: []byte{0x02, 0xFF}} // unknown extended opcode
	f.emitTIP(f.exec)
	_, _, _, health, err := f.g.window()
	if health != HealthMalformed {
		t.Fatalf("health = %v, want malformed", health)
	}
	if !errors.Is(err, ipt.ErrMalformedTrace) {
		t.Fatalf("err = %v, want ErrMalformedTrace", err)
	}
	if f.g.Stats.Malformed != 1 {
		t.Fatalf("Stats.Malformed = %d, want 1", f.g.Stats.Malformed)
	}
	if f.g.win.src != nil {
		t.Fatal("poisoned window cache was retained")
	}
}

// TestCheckDegradedPolicyOnGap drives Check() itself through each
// degraded mode on an unattributable (gap) window. No graph lookups can
// run — there are no records — so the verdict isolates pure policy.
func TestCheckDegradedPolicyOnGap(t *testing.T) {
	mk := func(mode DegradedMode) *windowFixture {
		pol := DefaultPolicy()
		pol.PktCount = 4
		pol.RequireModuleStride = false
		pol.OnDegraded = mode
		f := newWindowFixture(t, pol)
		f.tr.Out = ipt.NewToPA(256, 256)
		f.tr.PSBPeriod = 1 << 30
		for i := 0; i < 2000; i++ {
			f.emitTIP(f.exec)
		}
		return f
	}

	t.Run("fail-closed", func(t *testing.T) {
		f := mk(FailClosed)
		res := f.g.Check()
		if res.Verdict != VerdictViolation || !res.Degraded || res.Health != HealthGap {
			t.Fatalf("res = %+v, want degraded gap violation", res)
		}
		if f.g.Stats.FailClosures != 1 || f.g.Stats.Violations != 1 {
			t.Fatalf("stats = %+v, want one fail-closure violation", f.g.Stats)
		}
	})
	t.Run("fail-open", func(t *testing.T) {
		f := mk(FailOpen)
		res := f.g.Check()
		if res.Verdict != VerdictClean || !res.Degraded {
			t.Fatalf("res = %+v, want degraded clean", res)
		}
		if f.g.Stats.FailOpens != 1 || f.g.Stats.Violations != 0 {
			t.Fatalf("stats = %+v, want one fail-open, no violations", f.g.Stats)
		}
	})
	t.Run("slow-path-retry", func(t *testing.T) {
		// No resident sync point survives re-snapshotting either, so the
		// retries exhaust and the check fails closed.
		f := mk(SlowPathRetry)
		res := f.g.Check()
		if res.Verdict != VerdictViolation || !res.Degraded {
			t.Fatalf("res = %+v, want retries-exhausted violation", res)
		}
		if res.Retries == 0 || f.g.Stats.Retries == 0 {
			t.Fatalf("res.Retries = %d, Stats.Retries = %d; retry attempts not counted",
				res.Retries, f.g.Stats.Retries)
		}
		if f.g.Stats.FailClosures != 1 {
			t.Fatalf("Stats.FailClosures = %d, want 1", f.g.Stats.FailClosures)
		}
	})
}
