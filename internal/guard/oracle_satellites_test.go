package guard_test

// Satellite tests riding the differential-oracle PR: slow-path verdict
// caching across processes and retraining (the §7.1.1 approval cache
// end to end), Stats.Merge completeness, and the CheckPool accounting
// invariant under concurrent use (run with -race).

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// TestSlowPathApprovalReuseAndInvalidation drives the approval cache
// through its full life cycle: a sparsely trained ITC-CFG forces slow
// paths whose clean verdicts are cached; a second identical run reuses
// them (fewer slow checks); a RebuildCache advances the label generation,
// so a third run must re-earn every verdict from scratch.
func TestSlowPathApprovalReuseAndInvalidation(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, []byte("G /x\n")) // sparse: benign traffic leaves low-credit edges

	shared := guard.NewApprovalCache()
	run := func() uint64 {
		k := kernelsim.New()
		km := guard.InstallModule(k)
		p, err := a.app.Spawn(k, benignTraffic())
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		g.ShareApprovals(shared)
		st, err := k.Run(p, 80_000_000)
		if err != nil || !st.Exited {
			t.Fatalf("benign run: %v %v; reports %v", st, err, km.ReportsSnapshot())
		}
		if g.Stats.Violations != 0 {
			t.Fatalf("false positives: %+v", g.Stats)
		}
		return g.Stats.SlowChecks
	}

	s1 := run()
	if s1 == 0 {
		t.Fatal("sparse training produced no slow paths; test is vacuous")
	}
	if shared.Len() == 0 {
		t.Fatal("clean slow-path verdicts were not cached")
	}

	s2 := run()
	if s2 >= s1 {
		t.Fatalf("cached approvals not reused: %d slow checks (warm) vs %d (cold)", s2, s1)
	}

	// RebuildCache republishes the label snapshot; the flush is lazy —
	// it happens at the first check of the next run, not here.
	before := shared.Len()
	a.ig.RebuildCache()
	if shared.Len() != before {
		t.Fatalf("approval cache flushed eagerly (%d -> %d); SyncGen is a check-time sync", before, shared.Len())
	}

	// With the cache invalidated, the deterministic workload retraces
	// run 1 exactly: every approval is re-earned on the slow path.
	s3 := run()
	if s3 != s1 {
		t.Fatalf("after label-generation advance, slow checks = %d, want the cold count %d", s3, s1)
	}
	if shared.Len() == 0 {
		t.Fatal("approvals not re-earned after invalidation")
	}
}

// TestStatsMerge checks Merge over every Stats field by reflection, so a
// field added to Stats but forgotten in Merge fails here instead of
// silently vanishing from multi-process aggregates. Counters merge by
// sum; high-water marks (listed in maxMerged) merge by maximum.
func TestStatsMerge(t *testing.T) {
	maxMerged := map[string]bool{"AsyncMaxLag": true}
	var a, b guard.Stats
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	n := va.NumField()
	if n == 0 {
		t.Fatal("Stats has no fields")
	}
	for i := 0; i < n; i++ {
		f := va.Type().Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("Stats field %s is %s; this test (and Merge) assume uint64 counters", f.Name, f.Type)
		}
		va.Field(i).SetUint(uint64(i + 1))
		vb.Field(i).SetUint(uint64(1000 + 10*i))
	}
	a.Merge(&b)
	for i := 0; i < n; i++ {
		name := va.Type().Field(i).Name
		lo, hi := uint64(i+1), uint64(1000+10*i)
		want := lo + hi
		if maxMerged[name] {
			want = hi // hi > lo by construction
		}
		if got := va.Field(i).Uint(); got != want {
			t.Errorf("Merge dropped field %s: got %d, want %d", name, got, want)
		}
	}
	if got := vb.Field(0).Uint(); got != 1000 {
		t.Errorf("Merge mutated its argument: field 0 = %d", got)
	}
}

// TestCheckPoolInvariantConcurrent saturates a small pool from many
// goroutines and asserts the no-silent-drop invariant: every Do call is
// either admitted or shed (pool accounting), and every one of them lands
// in some guard's Stats.Checks (guard accounting), with the shed counts
// agreeing between the two ledgers.
func TestCheckPoolInvariantConcurrent(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, err := a.app.Load()
	if err != nil {
		t.Fatal(err)
	}

	pool := guard.NewCheckPool(2)
	pool.Deadline = 100 * time.Microsecond
	pool.QueueLimit = 1
	pool.RetryBackoff = 20 * time.Microsecond
	pool.Stall = func() time.Duration { return 200 * time.Microsecond }

	modes := []guard.DegradedMode{guard.FailClosed, guard.FailOpen, guard.SlowPathRetry}
	const goroutines, iters = 8, 25
	guards := make([]*guard.Guard, goroutines)
	for i := range guards {
		tr := ipt.NewTracer(ipt.NewToPA(4096))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			t.Fatal(err)
		}
		pol := guard.DefaultPolicy()
		pol.OnDegraded = modes[i%len(modes)]
		pol.RetryMax = 2
		guards[i] = guard.New(as, a.ocfg, a.ig, tr, pol)
	}

	var wg sync.WaitGroup
	for i := range guards {
		wg.Add(1)
		go func(g *guard.Guard) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				res := pool.Do(g)
				// The tracers never record anything, so the only possible
				// violations are shed fail-closed verdicts.
				if res.Verdict == guard.VerdictViolation && !res.Degraded {
					t.Errorf("non-degraded violation over an empty trace: %+v", res)
				}
			}
		}(guards[i])
	}
	wg.Wait()

	ps := pool.Snapshot()
	const total = uint64(goroutines * iters)
	if ps.Checks+ps.Shed != total {
		t.Fatalf("pool ledger leaks: admitted %d + shed %d != %d Do calls", ps.Checks, ps.Shed, total)
	}
	var sumChecks, sumShed, sumFailOpen, sumFailClosed uint64
	for i, g := range guards {
		sumChecks += g.Stats.Checks
		sumShed += g.Stats.Shed
		sumFailOpen += g.Stats.FailOpens
		sumFailClosed += g.Stats.FailClosures
		if g.Stats.Checks == 0 {
			t.Errorf("guard %d recorded no checks", i)
		}
	}
	if sumChecks != ps.Checks+ps.Shed {
		t.Fatalf("guard ledger disagrees with pool: %d guard checks vs %d admitted + %d shed",
			sumChecks, ps.Checks, ps.Shed)
	}
	if sumShed != ps.Shed {
		t.Fatalf("shed counts disagree: guards say %d, pool says %d", sumShed, ps.Shed)
	}
	if sumFailOpen+sumFailClosed != ps.Shed {
		t.Fatalf("every shed check must resolve fail-open or fail-closed: %d + %d != %d",
			sumFailOpen, sumFailClosed, ps.Shed)
	}
	if ps.Shed == 0 {
		t.Fatal("pool never shed a check; invariant not exercised (raise the stall)")
	}
	if ps.Retried == 0 {
		t.Error("SlowPathRetry guards never retried admission; invariant not exercised")
	}
}
