package guard

// White-box tests of the asynchronous checking pipeline's mechanics on
// the synthetic-branch window fixture: region-full capture, the gate's
// bounded-staleness wait, producer backpressure, and the poisoned-window
// replay after a contained worker panic. Background goroutines are kept
// out of the picture (closedPool) so every schedule is deterministic;
// the racing end-to-end behavior is covered by the black-box tests in
// async_test.go and the chaos soak in internal/faults.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"flowguard/internal/trace/ipt"
)

// closedPool returns a pool whose workers and watchdog have already
// exited: captures still enqueue and wake-sends still land in the
// buffered channel, but nothing drains in the background, so the test
// controls the drain schedule completely.
func closedPool(queue int) *AsyncPool {
	p := NewAsyncPool(1, queue)
	p.Close()
	return p
}

// newAsyncFixture is the window fixture re-pointed at a small two-region
// ToPA (so region-full captures actually fire) with the async pipeline
// attached.
func newAsyncFixture(t *testing.T, pol Policy, region, queue int) *windowFixture {
	t.Helper()
	f := newWindowFixture(t, pol)
	f.tr.Out = ipt.NewToPA(region, region)
	f.tr.PSBPeriod = 256 // keep sync points resident in the tiny buffer
	f.g.EnableAsync(closedPool(queue))
	return f
}

func asyncPolicy() Policy {
	pol := DefaultPolicy()
	pol.PktCount = 4
	pol.RequireModuleStride = false
	pol.Async = true
	return pol
}

// TestAsyncCaptureAndFlush: filling trace regions captures pending
// windows, and AsyncFlushStats folds the pipeline counters into Stats
// and discards the captures.
func TestAsyncCaptureAndFlush(t *testing.T) {
	f := newAsyncFixture(t, asyncPolicy(), 512, 0)
	for i := 0; i < 1000; i++ {
		f.emitTIP(f.exec)
	}
	f.tr.Flush()
	pend := f.g.AsyncPending()
	if pend == 0 {
		t.Fatal("no captured windows after filling trace regions")
	}
	f.g.AsyncFlushStats()
	if f.g.Stats.AsyncWindows == 0 {
		t.Fatal("AsyncWindows not folded into Stats")
	}
	if f.g.Stats.AsyncMaxLag < uint64(pend) {
		t.Fatalf("AsyncMaxLag = %d, want >= observed backlog %d", f.g.Stats.AsyncMaxLag, pend)
	}
	if f.g.AsyncPending() != 0 {
		t.Fatalf("flush left %d captures pending", f.g.AsyncPending())
	}
}

// TestAsyncDrainFeedsSharedWindow: after a first check establishes the
// incremental window, worker drains advance the very same decoder state
// the synchronous path would, and the next window() serves the residual
// without re-scanning what workers already fed.
func TestAsyncDrainFeedsSharedWindow(t *testing.T) {
	f := newAsyncFixture(t, asyncPolicy(), 512, 0)
	for i := 0; i < 100; i++ {
		f.emitTIP(f.exec)
	}
	if _, _, _, h, err := f.g.window(); err != nil || h != HealthClean {
		t.Fatalf("establishing window: health %v, err %v", h, err)
	}
	// Re-align capture with the verdict, as the gate does.
	f.g.mu.Lock()
	f.g.asyncAfterCheckLocked()
	f.g.mu.Unlock()

	for i := 0; i < 700; i++ {
		f.emitTIP(f.exec)
	}
	f.tr.Flush()
	if f.g.AsyncPending() == 0 {
		t.Fatal("no captures to drain")
	}
	drained := 0
	for f.g.AsyncDrainOne() {
		drained++
	}
	if drained == 0 {
		t.Fatal("AsyncDrainOne drained nothing")
	}
	wantTotal := f.tr.Out.TotalWritten()
	fed := f.g.win.total
	if fed <= 0 || fed > wantTotal {
		t.Fatalf("drains advanced window to %d of %d written", fed, wantTotal)
	}
	checkedBefore := f.g.win.checkedTotal
	tips, _, scanned, h, err := f.g.window()
	if err != nil || h != HealthClean {
		t.Fatalf("post-drain window: health %v, err %v", h, err)
	}
	if len(tips) == 0 {
		t.Fatal("post-drain window is empty")
	}
	// The cost model still charges every byte since the last verdict,
	// worker-fed or not.
	if want := wantTotal - checkedBefore; scanned != want {
		t.Fatalf("scanned = %d, want the %d-byte span since the last check", scanned, want)
	}
}

// TestAsyncGateDeadlineSheds: a backlog nobody drains forces the gate to
// its deadline; it sheds (counted) instead of deadlocking.
func TestAsyncGateDeadlineSheds(t *testing.T) {
	pol := asyncPolicy()
	pol.MaxLagWindows = 1
	pol.AsyncGateWait = 200 * time.Microsecond
	f := newAsyncFixture(t, pol, 256, 0)
	for i := 0; i < 1200; i++ {
		f.emitTIP(f.exec)
	}
	f.tr.Flush()
	if n := f.g.AsyncPending(); n <= 1 {
		t.Fatalf("backlog = %d, need > MaxLagWindows to force a wait", n)
	}
	start := time.Now()
	f.g.async.gateWait(f.g)
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("gate wait was not bounded: %v", el)
	}
	f.g.AsyncFlushStats()
	if f.g.Stats.WatchdogSheds == 0 {
		t.Fatal("deadline expiry did not count a shed")
	}
}

// TestAsyncBackpressureStallsProducer: with a tiny queue threshold and no
// workers, the producer must stall and then drain inline — the queue
// stays bounded and not a byte of trace is dropped.
func TestAsyncBackpressureStallsProducer(t *testing.T) {
	f := newAsyncFixture(t, asyncPolicy(), 256, 1)
	for i := 0; i < 1500; i++ {
		f.emitTIP(f.exec)
	}
	f.tr.Flush()
	if n := f.g.AsyncPending(); n > 2 {
		t.Fatalf("pending = %d; backpressure did not bound the queue", n)
	}
	f.g.AsyncFlushStats()
	if f.g.Stats.BackpressureStalls == 0 {
		t.Fatal("no producer stalls counted")
	}
	// Stall, not drop: the stream is fully intact — a fresh window over
	// the resident buffer decodes cleanly with records in it.
	tips, _, _, h, err := f.g.window()
	if err != nil || h != HealthClean {
		t.Fatalf("window after backpressure: health %v, err %v", h, err)
	}
	if len(tips) == 0 {
		t.Fatal("no records survived backpressure")
	}
	if f.g.Stats.Resyncs != 0 {
		t.Fatalf("backpressure caused %d spurious resyncs", f.g.Stats.Resyncs)
	}
}

// TestAsyncPoisonedWindowReplaysMalformedPath: a contained worker panic
// poisons the window; the next window() resolves it exactly like the
// synchronous malformed path (counted, cache dropped, error surfaced),
// and the one after that recovers from a fresh snapshot.
func TestAsyncPoisonedWindowReplaysMalformedPath(t *testing.T) {
	f := newAsyncFixture(t, asyncPolicy(), 1<<16, 0)
	for i := 0; i < 10; i++ {
		f.emitTIP(f.exec)
	}
	if _, _, _, h, err := f.g.window(); err != nil || h != HealthClean {
		t.Fatalf("establishing window: health %v, err %v", h, err)
	}

	f.g.asyncMarkPanicked(errors.New("worker died mid-feed"))
	f.emitTIP(f.exec)
	_, _, _, h, err := f.g.window()
	if h != HealthMalformed {
		t.Fatalf("poisoned window health = %v, want malformed", h)
	}
	if err == nil || !strings.Contains(err.Error(), "worker died mid-feed") {
		t.Fatalf("poisoned window err = %v, want the worker's error", err)
	}
	if f.g.Stats.Malformed != 1 {
		t.Fatalf("Stats.Malformed = %d, want 1", f.g.Stats.Malformed)
	}
	if f.g.win.src != nil {
		t.Fatal("poisoned window cache was retained")
	}
	f.g.AsyncFlushStats()
	if f.g.Stats.WorkerCrashes != 1 {
		t.Fatalf("Stats.WorkerCrashes = %d, want 1", f.g.Stats.WorkerCrashes)
	}

	// Recovery: the trace itself is intact, so a fresh snapshot decodes
	// clean — the poison does not stick past one resolution.
	f.emitTIP(f.exec)
	if _, _, _, h, err := f.g.window(); err != nil || h != HealthClean {
		t.Fatalf("recovery window: health %v, err %v", h, err)
	}
}

// TestAsyncWrapLossMatchesSyncClassification: when the stream outruns
// the buffer between checks, the loss must be classified against the
// last *verdict* — even if worker drains pre-decoded part of the span a
// synchronous checker would have lost. Async and sync fixtures fed the
// identical emission schedule must agree on Resyncs.
func TestAsyncWrapLossMatchesSyncClassification(t *testing.T) {
	run := func(async bool) *Guard {
		pol := asyncPolicy()
		pol.Async = async
		var f *windowFixture
		if async {
			f = newAsyncFixture(t, pol, 256, 0)
		} else {
			f = newWindowFixture(t, pol)
			f.tr.Out = ipt.NewToPA(256, 256)
			f.tr.PSBPeriod = 256
		}
		emit := func(n int) {
			for i := 0; i < n; i++ {
				f.emitTIP(f.exec)
			}
			f.tr.Flush()
		}
		check := func() {
			if _, _, _, _, err := f.g.window(); err != nil {
				t.Fatalf("window (async=%v): %v", async, err)
			}
			if async {
				f.g.mu.Lock()
				f.g.asyncBeforeCheckLocked()
				f.g.asyncAfterCheckLocked()
				f.g.mu.Unlock()
			}
		}
		emit(100) // establish
		check()
		if async {
			// Pre-decode some of the span that is about to wrap away.
			emit(300)
			for f.g.AsyncDrainOne() {
			}
			emit(1200) // now outrun the 512-byte buffer
		} else {
			emit(1500)
		}
		check()
		emit(50)
		check()
		return f.g
	}
	gs, ga := run(false), run(true)
	if gs.Stats.Resyncs == 0 {
		t.Fatal("setup: the synchronous run never wrapped past a check")
	}
	if ga.Stats.Resyncs != gs.Stats.Resyncs {
		t.Fatalf("wrap-loss classification diverged: async %d resyncs, sync %d",
			ga.Stats.Resyncs, gs.Stats.Resyncs)
	}
}
