package guard

import (
	"fmt"

	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// slowPath runs the precise check of §5.3: it decodes the buffered trace
// at the instruction-flow layer (the Intel reference-decoder analogue,
// invoked in the paper through an upcall to a waiting user-level
// process), verifies every reconstructed edge against the O-CFG with the
// TypeArmor forward-edge policy, and maintains a shadow stack enforcing
// the single-target policy for returns. On a clean verdict the window's
// suspicious edges are cached as approved for subsequent fast paths.
//
//fg:cold the precise check runs only on non-credible windows (§5.3)
func (g *Guard) slowPath(res *Result, tips []ipt.TIPRecord, region []byte) {
	res.UsedSlowPath = true
	// Decode exactly the window the fast path inspected (§5.3:
	// "FlowGuard only checks a specified number of TIP packets"); the
	// region always starts at a PSB sync point.
	if len(region) == 0 {
		return // nothing decodable; fast-path verdict stands
	}
	ft, err := ipt.DecodeFull(g.AS, region, 0)
	if ft != nil {
		res.SlowCycles += ft.Cycles()
	}
	if err != nil {
		// The reconstructed flow left mapped executable memory: only a
		// hijacked control flow does that.
		res.Verdict = VerdictViolation
		res.Reason = fmt.Sprintf("slow path: flow reconstruction failed: %v", err)
		return
	}

	// Shadow stack over the reconstructed window. The window may begin
	// mid-execution, so returns that underflow the window-local stack
	// fall back to the O-CFG return-matching check only. At each
	// overflow-resynchronization seam the walk restarted from a PSB with
	// an unknown call depth, so the stack is cleared: popping frames
	// pushed before the seam would fault legitimate returns.
	var shadow []uint64
	nextResync := 0
	for fi, b := range ft.Flow {
		for nextResync < len(ft.ResyncPoints) && ft.ResyncPoints[nextResync] <= fi {
			shadow = shadow[:0]
			nextResync++
		}
		if !g.OCFG.ContainsEdge(b.Source, b.Target, b.Class) {
			res.Verdict = VerdictViolation
			res.Reason = fmt.Sprintf("slow path: O-CFG mismatch: %v %s -> %s",
				b.Class, g.AS.SymbolFor(b.Source), g.AS.SymbolFor(b.Target))
			return
		}
		op := g.opAt(b.Source)
		switch op {
		case isa.CALL, isa.CALLR:
			shadow = append(shadow, b.Source+isa.InstrSize)
		case isa.RET:
			if len(shadow) == 0 {
				continue // truncated prologue: matching already checked
			}
			want := shadow[len(shadow)-1]
			shadow = shadow[:len(shadow)-1]
			if b.Target != want {
				res.Verdict = VerdictViolation
				res.Reason = fmt.Sprintf("slow path: shadow stack: ret %s -> %s, want %s",
					g.AS.SymbolFor(b.Source), g.AS.SymbolFor(b.Target), g.AS.SymbolFor(want))
				return
			}
		case isa.SYSCALL:
			if b.Target != b.Source+isa.InstrSize {
				res.Verdict = VerdictViolation
				res.Reason = fmt.Sprintf("slow path: far transfer resumed at %s",
					g.AS.SymbolFor(b.Target))
				return
			}
		}
	}

	// No attack: remember the suspicious edges (and, in path-sensitive
	// mode, the edge pairs) so later fast paths pass them without
	// re-decoding. Pairs straddling an overflow seam are not real edges
	// and must not be cached as approved.
	for i := 0; i+1 < len(tips); i++ {
		if tips[i].Async || tips[i+1].Resync || tips[i+1].Async {
			continue
		}
		src, dst, sig := tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig
		l := g.lookupEdge(src, dst, sig)
		if l.Exists && !(l.HighCredit && l.SigMatch) {
			g.appr.ApproveEdge(edgeKey{src, dst, sig})
		}
		if g.Policy.PathSensitive && i+2 < len(tips) && !tips[i+2].Resync && !tips[i+2].Async {
			g.appr.ApprovePath(itc.PathKey(src, dst, tips[i+2].IP))
		}
	}
}

// opAt decodes the opcode at a code address (0 instruction count cost:
// already charged through the full decode).
func (g *Guard) opAt(addr uint64) isa.Op {
	raw, err := g.AS.FetchInstr(addr)
	if err != nil {
		return isa.NOP
	}
	in, err := isa.Decode(raw)
	if err != nil {
		return isa.NOP
	}
	return in.Op
}
