package guard

import (
	"sync"
	"sync/atomic"
)

// approvalStripes is the number of lock stripes in an ApprovalCache; a
// small power of two keeps the mask cheap while spreading contention of
// concurrent checkers.
const approvalStripes = 16

// ApprovalCache holds slow-path "no attack" verdicts (§7.1.1: "the
// negative results of slow path checking are cached for the subsequent
// fast path checking") plus their path-sensitive counterparts. It is
// safe for concurrent use: entries are sharded across striped RWMutexes
// so parallel checkers for different processes contend only when they
// hash to the same stripe.
//
// A cache may be shared between the guards of several processes running
// the same binaries (flowguard.RunMulti does this): an edge slow-path-
// approved in one process is equally legitimate in every other, so
// sharing converts one process's slow path into every sibling's fast
// path — the cross-core analogue of the paper's per-process caching.
type ApprovalCache struct {
	stripes [approvalStripes]approvalStripe

	// gen is the ITC-CFG label generation the cached verdicts were
	// earned against; genMu serializes the flush when it advances.
	gen   atomic.Uint64
	genMu sync.Mutex
}

type approvalStripe struct {
	mu    sync.RWMutex
	edges map[edgeKey]struct{}
	paths map[uint64]struct{}
}

// NewApprovalCache returns an empty cache.
func NewApprovalCache() *ApprovalCache {
	c := &ApprovalCache{}
	for i := range c.stripes {
		c.stripes[i].edges = make(map[edgeKey]struct{})
		c.stripes[i].paths = make(map[uint64]struct{})
	}
	return c
}

// mix folds a key to a stripe index (FNV-style multiply-xor).
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

func (c *ApprovalCache) edgeStripe(k edgeKey) *approvalStripe {
	return &c.stripes[mix(k.src^k.dst*0x100000001b3^k.sig)&(approvalStripes-1)]
}

func (c *ApprovalCache) pathStripe(k uint64) *approvalStripe {
	return &c.stripes[mix(k)&(approvalStripes-1)]
}

// ApprovedEdge reports a cached clean verdict for the edge.
func (c *ApprovalCache) ApprovedEdge(k edgeKey) bool {
	s := c.edgeStripe(k)
	s.mu.RLock()
	_, ok := s.edges[k]
	s.mu.RUnlock()
	return ok
}

// ApproveEdge records a clean slow-path verdict for the edge.
func (c *ApprovalCache) ApproveEdge(k edgeKey) {
	s := c.edgeStripe(k)
	s.mu.Lock()
	s.edges[k] = struct{}{}
	s.mu.Unlock()
}

// ApprovedPath reports a cached clean verdict for a consecutive-edge
// pair (path-sensitive mode).
func (c *ApprovalCache) ApprovedPath(k uint64) bool {
	s := c.pathStripe(k)
	s.mu.RLock()
	_, ok := s.paths[k]
	s.mu.RUnlock()
	return ok
}

// ApprovePath records a clean slow-path verdict for a consecutive-edge
// pair.
func (c *ApprovalCache) ApprovePath(k uint64) {
	s := c.pathStripe(k)
	s.mu.Lock()
	s.paths[k] = struct{}{}
	s.mu.Unlock()
}

// SyncGen flushes every cached approval when the ITC-CFG label
// generation has advanced since the last sync: a slow-path "no attack"
// verdict is earned against one label snapshot, and retraining followed
// by RebuildCache may relabel the very edges it vouched for. Guards call
// this at the top of every check; when the generation is unchanged (the
// steady state) it is a single atomic load.
func (c *ApprovalCache) SyncGen(gen uint64) {
	if c.gen.Load() == gen {
		return
	}
	c.genMu.Lock()
	defer c.genMu.Unlock()
	if c.gen.Load() == gen {
		return // another checker flushed while we waited
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		clear(s.edges)
		clear(s.paths)
		s.mu.Unlock()
	}
	c.gen.Store(gen)
}

// Clone returns a deep copy of the cache: a point-in-time snapshot of
// every approved edge and path at the current label generation. The
// fork-inheritance conformance property is stated in terms of it — a
// forked child sharing the parent's live cache behaves byte-identically
// to a fresh process pre-trained with Clone() taken at fork time, as
// long as both then observe the same traffic.
func (c *ApprovalCache) Clone() *ApprovalCache {
	out := NewApprovalCache()
	for i := range c.stripes {
		s := &c.stripes[i]
		d := &out.stripes[i]
		s.mu.RLock()
		for k := range s.edges {
			d.edges[k] = struct{}{}
		}
		for k := range s.paths {
			d.paths[k] = struct{}{}
		}
		s.mu.RUnlock()
	}
	out.gen.Store(c.gen.Load())
	return out
}

// Len returns the number of approved edges (diagnostics).
func (c *ApprovalCache) Len() int {
	n := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.RLock()
		n += len(s.edges)
		s.mu.RUnlock()
	}
	return n
}
