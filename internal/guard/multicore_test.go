package guard_test

// Multicore end-to-end tests: the preemptive world (shared per-core
// trace units, PIP/CR3 demux, per-thread check state, signal-interrupted
// windows) must reproduce solo-protection behavior exactly for a single
// process, and isolate verdicts across processes, threads and signals
// when the machine is actually shared.

import (
	"bytes"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// runMulticore spawns each app with its input under multicore protection
// and drives the preemptive scheduler.
func runMulticoreProcs(t *testing.T, an *analyzed, inputs [][]byte, cores int, quantum uint64, pol guard.Policy) ([]kernelsim.ExitStatus, *guard.KernelModule, []*guard.Guard, []*kernelsim.Process) {
	t.Helper()
	k := kernelsim.New()
	km := guard.InstallModule(k)
	if err := km.EnableMulticore(cores); err != nil {
		t.Fatal(err)
	}
	var procs []*kernelsim.Process
	var guards []*guard.Guard
	for _, in := range inputs {
		p, err := an.app.Spawn(k, in)
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.ProtectMulticore(p, an.ocfg, an.ig, pol)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
		guards = append(guards, g)
	}
	sts, err := k.RunMulticore(procs, cores, quantum, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	km.FlushMulticore()
	km.Shutdown()
	return sts, km, guards, procs
}

func TestMulticoreBenignMatchesSoloExactly(t *testing.T) {
	an := analyze(t, apps.Vulnd())
	an.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))

	stSolo, kmSolo, gSolo, _ := an.protectAndRun(t, benignTraffic(), guard.DefaultPolicy())
	if !stSolo.Exited {
		t.Fatalf("solo run: %v", stSolo)
	}
	if len(kmSolo.Reports) != 0 {
		t.Fatalf("solo false positives: %v", kmSolo.Reports)
	}

	sts, km, guards, _ := runMulticoreProcs(t, an,
		[][]byte{benignTraffic()}, 2, 300, guard.DefaultPolicy())
	if !sts[0].Exited {
		t.Fatalf("multicore run: %v; reports: %v", sts[0], km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("multicore false positives: %v", km.Reports)
	}
	g := guards[0]

	// The demuxed per-process stream must be the byte-identical stream
	// the solo CR3-filtered tracer captured, and every derived statistic
	// must agree — verdicts, edge observations, cycle accounting.
	soloBytes := gSolo.Tracer.Out.Snapshot()
	mcBytes := g.Tracer.Out.Snapshot()
	if !bytes.Equal(soloBytes, mcBytes) {
		t.Errorf("demuxed stream (%d bytes) != solo stream (%d bytes)",
			len(mcBytes), len(soloBytes))
	}
	if g.Stats != gSolo.Stats {
		t.Errorf("multicore stats diverge from solo:\n mc  = %+v\n solo = %+v",
			g.Stats, gSolo.Stats)
	}
	if dmx := km.DemuxStats(); dmx == nil || dmx.Resyncs != 0 || dmx.UnmarkedLosses != 0 {
		t.Errorf("clean run demux state: %+v", dmx)
	}
}

func TestMulticoreDetectsROPAcrossSharedCores(t *testing.T) {
	app := apps.Vulnd()
	an := analyze(t, app)
	an.train(t, benignTraffic())
	as, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}

	sts, km, _, procs := runMulticoreProcs(t, an,
		[][]byte{benignTraffic(), payload}, 2, 300, guard.DefaultPolicy())

	if !sts[0].Exited {
		t.Errorf("benign neighbor: %v, want clean exit", sts[0])
	}
	if !sts[1].Killed || sts[1].Signal != kernelsim.SIGKILL {
		t.Errorf("attacked process: %v, want SIGKILL", sts[1])
	}
	reports := km.ReportsSnapshot()
	if len(reports) == 0 {
		t.Fatal("ROP attack produced no violation report")
	}
	for _, r := range reports {
		if r.PID != procs[1].PID {
			t.Errorf("violation attributed to pid %d, want attacker pid %d", r.PID, procs[1].PID)
		}
	}
}

func TestMulticoreSignaldHandlerWindowsAdmitted(t *testing.T) {
	app, err := apps.ByName("signald")
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(t, app)
	an.train(t, app.MakeInput(20, 7), app.MakeInput(25, 8))

	in := app.MakeInput(30, 42)
	if !bytes.ContainsRune(in, 'S') {
		t.Fatal("workload contains no self-signal command")
	}
	sts, km, guards, procs := runMulticoreProcs(t, an,
		[][]byte{in}, 2, 120, guard.DefaultPolicy())
	if !sts[0].Exited {
		t.Fatalf("signald: %v; reports: %v", sts[0], km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("signal-interrupted windows produced false positives: %v", km.Reports)
	}
	if guards[0].Stats.Checks == 0 {
		t.Fatal("no endpoint checks ran")
	}
	// The handler's write endpoint ran inside interrupted windows.
	if len(procs[0].Stdout) == 0 {
		t.Fatal("no output produced")
	}
}

func TestMulticoreThreaddPerThreadChecks(t *testing.T) {
	app, err := apps.ByName("threadd")
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(t, app)
	an.train(t, app.MakeInput(20, 7), app.MakeInput(25, 8))

	// First byte odd: two worker threads.
	in := append([]byte{0x03}, app.MakeInput(25, 42)[1:]...)
	sts, km, guards, procs := runMulticoreProcs(t, an,
		[][]byte{in}, 3, 150, guard.DefaultPolicy())
	if !sts[0].Exited {
		t.Fatalf("threadd: %v; reports: %v", sts[0], km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("threaded run produced false positives: %v", km.Reports)
	}
	if got := len(procs[0].Threads); got != 3 {
		t.Fatalf("threads = %d, want main + 2 workers", got)
	}
	if guards[0].Stats.Checks == 0 {
		t.Fatal("no endpoint checks ran")
	}
	if dmx := km.DemuxStats(); dmx.Resyncs != 0 || dmx.UnmarkedLosses != 0 {
		t.Errorf("clean threaded run demux state: Resyncs=%d UnmarkedLosses=%d",
			dmx.Resyncs, dmx.UnmarkedLosses)
	}
	// Worker threads crossed write endpoints of their own.
	if len(procs[0].Stdout) == 0 {
		t.Fatal("no output produced")
	}
}

func TestMulticoreForkInheritsProtection(t *testing.T) {
	app, err := apps.ByName("forkd")
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(t, app)
	an.train(t, app.MakeInput(12, 7), app.MakeInput(15, 8))

	sts, km, _, _ := runMulticoreProcs(t, an,
		[][]byte{app.MakeInput(15, 42)}, 2, 200, guard.DefaultPolicy())
	for i, st := range sts {
		if !st.Exited {
			t.Fatalf("proc %d: %v; reports: %v", i, st, km.Reports)
		}
	}
	if len(sts) < 2 {
		t.Fatalf("forkd spawned no children under multicore (%d statuses)", len(sts))
	}
	if len(km.Reports) != 0 {
		t.Fatalf("fork inheritance false positives: %v", km.Reports)
	}
	if got := len(km.Guards()); got < 2 {
		t.Errorf("guards = %d, want parent + child", got)
	}
}

// TestMulticoreMarkerLossSurfacesInGuards wires a slice-boundary fault
// injector (every context-switch marker dropped) into the shared
// per-core tracers and pins the loss-accounting plumbing end to end:
// the demux classifies unmarked losses and the charge reaches the
// affected guards' StreamLosses counters. It also exercises the harness
// hooks directly — CheckCurrent must dispatch a real multicore check
// and ThreadSink must expose the per-thread demux sink that received
// the process's bytes.
func TestMulticoreMarkerLossSurfacesInGuards(t *testing.T) {
	an := analyze(t, apps.Vulnd())
	an.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))

	k := kernelsim.New()
	km := guard.InstallModule(k)
	if err := km.EnableMulticore(2); err != nil {
		t.Fatal(err)
	}
	pol := guard.DefaultPolicy()
	pol.OnDegraded = guard.FailOpen
	var procs []*kernelsim.Process
	var guards []*guard.Guard
	for i := 0; i < 3; i++ {
		p, err := an.app.Spawn(k, benignTraffic())
		if err != nil {
			t.Fatal(err)
		}
		g, err := km.ProtectMulticore(p, an.ocfg, an.ig, pol)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
		guards = append(guards, g)
	}
	km.InjectCoreFaults(faults.NewSliceFaults(faults.SliceConfig{Seed: 3, DropRate: 1}))
	if _, err := k.RunMulticore(procs, 2, 200, 500_000_000); err != nil {
		t.Fatal(err)
	}
	km.FlushMulticore()

	// Under total marker loss the demux misattributes neighbor spans, so
	// the verdict may legitimately be a violation — the assertion is only
	// that the hook dispatches a real multicore check over real bytes.
	res, ok := km.CheckCurrent(procs[0])
	if !ok {
		t.Fatal("CheckCurrent found no guard for a protected process")
	}
	if res.TIPs == 0 && res.Health == guard.HealthClean {
		t.Errorf("CheckCurrent ran over an empty clean window: %+v", res)
	}
	sink := km.ThreadSink(procs[0].CurrentThread())
	if sink == nil || sink.TotalWritten() == 0 {
		t.Fatal("ThreadSink returned no per-thread stream")
	}
	km.Shutdown()

	if dmx := km.DemuxStats(); dmx.UnmarkedLosses == 0 {
		t.Errorf("all markers dropped yet UnmarkedLosses=0 (Resyncs=%d)", dmx.Resyncs)
	}
	var losses uint64
	for _, g := range guards {
		losses += g.Stats.StreamLosses
	}
	if losses == 0 {
		t.Error("unmarked losses never charged to any guard's StreamLosses")
	}
}
