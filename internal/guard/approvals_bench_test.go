package guard

// Micro-benchmark of the striped slow-path verdict cache (§7.1.1). The
// fast loop consults ApprovedEdge once per low-credit edge, so its
// lookup cost — an RLock on one of 16 stripes plus a map probe — sits
// directly on the hot path whenever training coverage is imperfect.
// Tier-1 in fgperf's regression gate.

import (
	"math/rand"
	"testing"
)

func approvalBenchKeys() (hits, misses []edgeKey) {
	rng := rand.New(rand.NewSource(1))
	const n = 4096
	hits = make([]edgeKey, n)
	misses = make([]edgeKey, n)
	for i := range hits {
		hits[i] = edgeKey{rng.Uint64(), rng.Uint64(), rng.Uint64() & 0xff}
		misses[i] = edgeKey{rng.Uint64(), rng.Uint64(), rng.Uint64() & 0xff}
	}
	return hits, misses
}

func BenchmarkApprovalCache(b *testing.B) {
	hits, misses := approvalBenchKeys()
	c := NewApprovalCache()
	for _, k := range hits {
		c.ApproveEdge(k)
	}

	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		found := 0
		for i := 0; i < b.N; i++ {
			if c.ApprovedEdge(hits[i%len(hits)]) {
				found++
			}
		}
		if found != b.N {
			b.Fatalf("%d/%d approved keys missed", b.N-found, b.N)
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if c.ApprovedEdge(misses[i%len(misses)]) {
				b.Fatal("unapproved key reported approved")
			}
		}
	})
	// Contended profile: every goroutine reads, and ~1/64 ops record a
	// fresh approval — the shape of parallel checkers sharing one cache
	// (RunMulti) while occasional slow paths write through.
	b.Run("parallel-mixed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i%64 == 63 {
					c.ApproveEdge(misses[i%len(misses)])
				} else {
					c.ApprovedEdge(hits[i%len(hits)])
				}
				i++
			}
		})
	})
}
