package guard

import (
	"sync"
)

// DefaultFairShareBurst is the over-share multiplier when
// FleetPool.Burst is zero: a tenant may hold up to Burst × its equal
// share of a shard's checker slots before fairness demotes it to
// best-effort admission.
const DefaultFairShareBurst = 2

// FleetPool is the fleet-scale admission layer (DESIGN.md §10): checks
// from many tenants are sharded by tenant onto independent CheckPools,
// and within each shard a per-tenant fair-share rule keeps one noisy
// tenant from starving the rest. Admission outcomes are never silent:
//
//   - A tenant within its fair share gets the shard pool's normal
//     admission (blocking, or deadline/queue-governed as configured).
//   - A tenant over its fair share gets one non-blocking try — spare
//     capacity is free for the taking — and is otherwise shed with a
//     policy-governed verdict counted as a FairnessShed (and in Shed,
//     so the per-shard ledger checks == admitted + shed still covers
//     every offered check).
//
// Sharding by tenant (not process) keeps one tenant's burst confined
// to one shard's queue while its siblings' shards stay unqueued.
type FleetPool struct {
	shards []*fleetShard

	// Burst is the fair-share multiplier (DefaultFairShareBurst if 0):
	// a tenant's in-flight admissions may reach
	// Burst × workers / activeTenants (minimum 1) before demotion.
	Burst int
}

type fleetShard struct {
	pool *CheckPool

	mu sync.Mutex
	// inflight counts each tenant's checks currently inside this shard
	// (queued or running). Entries are removed at zero, so len(inflight)
	// is the number of currently active tenants — the denominator of the
	// fair share.
	inflight map[string]int
}

// NewFleetPool builds a pool of shards CheckPools with workersPerShard
// checker slots each. shards and workersPerShard below 1 are raised to
// 1. The shard pools are plain blocking CheckPools; callers needing
// deadline/queue-bounded admission configure them via Shards().
func NewFleetPool(shards, workersPerShard int) *FleetPool {
	if shards < 1 {
		shards = 1
	}
	f := &FleetPool{shards: make([]*fleetShard, shards)}
	for i := range f.shards {
		f.shards[i] = &fleetShard{
			pool:     NewCheckPool(workersPerShard),
			inflight: make(map[string]int),
		}
	}
	return f
}

// NumShards returns the shard count.
func (f *FleetPool) NumShards() int { return len(f.shards) }

// Shards exposes the underlying CheckPools for configuration (deadline,
// queue limit, stall hooks). Configure before checking starts.
func (f *FleetPool) Shards() []*CheckPool {
	out := make([]*CheckPool, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.pool
	}
	return out
}

// ShardIndex maps a tenant to its shard index (FNV-1a; deterministic
// so a fleet run's shard layout is reproducible from its tenant names,
// and tests can verify per-shard ledgers against offered load).
func (f *FleetPool) ShardIndex(tenant string) int {
	if len(f.shards) == 1 {
		return 0
	}
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * 0x100000001b3
	}
	return int(mix(h) % uint64(len(f.shards)))
}

func (f *FleetPool) shardFor(tenant string) *fleetShard {
	return f.shards[f.ShardIndex(tenant)]
}

// Do admits and runs one check for the tenant under the fleet's
// fairness rules, returning the (possibly shed) policy-governed result.
func (f *FleetPool) Do(tenant string, g *Guard) Result {
	burst := f.Burst
	if burst <= 0 {
		burst = DefaultFairShareBurst
	}
	return f.shardFor(tenant).do(tenant, g, burst)
}

func (s *fleetShard) do(tenant string, g *Guard, burst int) Result {
	// Account the admission attempt, then decide the tenant's standing.
	// The mutex covers only the map — it is released before any pool
	// channel operation, so a blocked admission never holds it.
	s.mu.Lock()
	s.inflight[tenant]++
	cur := s.inflight[tenant]
	share := s.fairShare(len(s.inflight), burst)
	s.mu.Unlock()

	var res Result
	if cur > share {
		// Over fair share: spare capacity only, never a queue slot.
		var ok bool
		if res, ok = s.pool.TryDo(g); !ok {
			res = s.pool.ShedFair(g)
		}
	} else {
		res = s.pool.Do(g)
	}

	s.mu.Lock()
	if s.inflight[tenant]--; s.inflight[tenant] <= 0 {
		delete(s.inflight, tenant)
	}
	s.mu.Unlock()
	return res
}

// fairShare is the per-tenant in-flight bound: burst × an equal split
// of the shard's checker slots among currently active tenants, never
// below one (every tenant may always have one check in flight).
func (s *fleetShard) fairShare(activeTenants, burst int) int {
	if activeTenants < 1 {
		activeTenants = 1
	}
	share := burst * s.pool.Workers() / activeTenants
	if share < 1 {
		share = 1
	}
	return share
}

// Snapshot returns the merged accounting across all shards.
func (f *FleetPool) Snapshot() PoolStats {
	var out PoolStats
	for _, s := range f.shards {
		out.Merge(s.pool.Snapshot())
	}
	return out
}

// ShardSnapshots returns each shard's accounting (ledger checks per
// shard: Checks + Shed is that shard's total offered load).
func (f *FleetPool) ShardSnapshots() []PoolStats {
	out := make([]PoolStats, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.pool.Snapshot()
	}
	return out
}
