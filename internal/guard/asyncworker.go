package guard

// AsyncPool: the worker side of the asynchronous checking pipeline
// (DESIGN.md §9). Workers drain captured trace windows into their
// guards' incremental decoders between endpoints; a watchdog catches
// pipelines whose workers wedged or died and sheds their backlog to
// synchronous draining. Failure containment is explicit: a worker panic
// is recovered, counted, and — if it can have touched decoder state —
// resolved under Policy.OnDegraded at the next gate, never propagated
// into the traced process's goroutine.

import (
	"fmt"
	"sync"
	"time"
)

// Watchdog cadence and staleness threshold: a backlog older than
// watchdogStallAfter with no worker progress means the pool has fallen
// behind (wedged, crashed, or oversubscribed) and the backlog is drained
// synchronously instead of waiting for it to deadlock the next gate.
const (
	watchdogEvery      = 200 * time.Microsecond
	watchdogStallAfter = time.Millisecond
)

// WorkerFaults injects worker-side faults into a pool — the
// fault-injection harness (internal/faults) implements it. Both hooks
// are consulted at task pickup, before the worker touches any guard
// state, so injected failures are containment tests with no effect on
// verdicts.
type WorkerFaults interface {
	// WorkerStall returns how long the worker should wedge before its
	// task (zero = no fault this time).
	WorkerStall() time.Duration
	// WorkerCrash reports whether the worker should crash at pickup.
	WorkerCrash() bool
}

// injectedCrash is the panic value of an injected WorkerCrash; the
// recovery path distinguishes it from a real worker bug.
type injectedCrash struct{}

// AsyncPoolStats is a point-in-time snapshot of pool-level accounting.
type AsyncPoolStats struct {
	// Tasks is the number of wake-ups workers processed.
	Tasks uint64
	// Crashes is the number of contained worker panics.
	Crashes uint64
	// Stalls is the number of injected worker stalls served.
	Stalls uint64
	// WatchdogSheds is the number of fallen-behind backlogs the watchdog
	// drained synchronously.
	WatchdogSheds uint64
}

// AsyncPool runs the background workers and the watchdog. One pool
// serves any number of guards (workers parallelize across guards;
// a single guard's stream drains serially under its own mutex).
type AsyncPool struct {
	wake chan *Guard
	quit chan struct{}
	wg   sync.WaitGroup

	// queue is the per-guard backpressure threshold (Policy.AsyncQueue
	// at pool construction; 0 = DefaultAsyncQueue).
	queue int

	mu     sync.Mutex
	guards []*Guard
	faults WorkerFaults
	stats  AsyncPoolStats
}

// NewAsyncPool starts a pool with the given number of workers
// (0 = DefaultAsyncWorkers) and the given per-guard queue threshold
// (0 = DefaultAsyncQueue). Close it when the workload is done.
func NewAsyncPool(workers, queue int) *AsyncPool {
	if workers <= 0 {
		workers = DefaultAsyncWorkers
	}
	p := &AsyncPool{
		wake:  make(chan *Guard, 4*workers+16),
		quit:  make(chan struct{}),
		queue: queue,
	}
	p.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.watchdog()
	return p
}

// InjectFaults installs a worker-side fault injector (tests and the
// chaos soak). Call before the workload runs.
func (p *AsyncPool) InjectFaults(f WorkerFaults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Snapshot returns the pool-level counters.
func (p *AsyncPool) Snapshot() AsyncPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the workers and the watchdog and waits for them. Captured
// windows still pending are left to their guards' gates (or discarded
// with the guards); Close never blocks on guard state.
func (p *AsyncPool) Close() {
	close(p.quit)
	p.wg.Wait()
}

// register attaches a guard (EnableAsync calls it).
func (p *AsyncPool) register(g *Guard) {
	p.mu.Lock()
	p.guards = append(p.guards, g)
	p.mu.Unlock()
}

func (p *AsyncPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case g := <-p.wake:
			p.runTask(g)
		case <-p.quit:
			return
		}
	}
}

// runTask drains one guard's backlog, with fault injection and panic
// containment. A contained panic never kills the worker loop: the
// goroutine resumes waiting for work, modeling a respawned worker.
func (p *AsyncPool) runTask(g *Guard) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(injectedCrash); ok {
			// The injected crash fired before any guard state was
			// touched: the backlog stays queued for a sibling, the
			// watchdog, or the gate. Containment with zero state effect.
			g.asyncNoteCrash()
		} else {
			// A real worker bug may have died mid-feed; the decoder
			// state is suspect. Poison the window so the next gate
			// resolves it under Policy.OnDegraded.
			g.asyncMarkPanicked(fmt.Errorf("async worker panic: %v", r))
		}
		p.mu.Lock()
		p.stats.Crashes++
		p.mu.Unlock()
	}()
	p.mu.Lock()
	p.stats.Tasks++
	f := p.faults
	p.mu.Unlock()
	if f != nil {
		if d := f.WorkerStall(); d > 0 {
			// A wedged worker: holds no locks, just fails to make
			// progress. The watchdog or the gate's deadline covers the
			// backlog meanwhile.
			p.mu.Lock()
			p.stats.Stalls++
			p.mu.Unlock()
			time.Sleep(d)
		}
		if f.WorkerCrash() {
			panic(injectedCrash{})
		}
	}
	for g.AsyncDrainOne() {
	}
}

// watchdog scans registered guards for backlogs nobody is draining — a
// wedged worker, a crash storm, or an oversubscribed pool — and sheds
// them to synchronous draining on its own goroutine. This bounds how
// long the bounded-staleness gate can be forced to its deadline: the
// pipeline degrades to synchronous checking rather than deadlocking.
func (p *AsyncPool) watchdog() {
	defer p.wg.Done()
	tick := time.NewTicker(watchdogEvery)
	defer tick.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-tick.C:
			p.mu.Lock()
			guards := append([]*Guard(nil), p.guards...)
			p.mu.Unlock()
			for _, g := range guards {
				a := g.async
				a.mu.Lock()
				stale := len(a.pending) > 0 && time.Since(a.oldestAt) > watchdogStallAfter
				if stale {
					a.sheds++
				}
				a.mu.Unlock()
				if stale {
					p.mu.Lock()
					p.stats.WatchdogSheds++
					p.mu.Unlock()
					for g.AsyncDrainOne() {
					}
				}
			}
		}
	}
}
