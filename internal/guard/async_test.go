package guard_test

// End-to-end tests of the asynchronous checking pipeline (DESIGN.md §9)
// against the real vulnerable server: verdict transparency (async runs
// must be bit-for-bit equivalent to synchronous ones on every
// verdict-bearing counter, with live racing workers), and worker-failure
// containment (injected stalls and crashes, plus a real worker panic
// resolved under each Policy.OnDegraded mode).

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/faults"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// asyncOnlyStats are the pipeline's own scheduling counters: the only
// guard.Stats fields allowed to differ between a synchronous and an
// asynchronous run of the same workload.
var asyncOnlyStats = map[string]bool{
	"AsyncWindows": true, "AsyncMaxLag": true, "BackpressureStalls": true,
	"WatchdogSheds": true, "WorkerCrashes": true,
}

// heavyTraffic is a benign request stream long enough to fill several
// 8 KiB ToPA regions (one benignTraffic round trip only traces ~3 KB,
// which never triggers a region-full capture). It avoids the payload
// ('P') requests on purpose — repeating those overflows the vulnerable
// server's own buffer and segfaults it without any attack.
func heavyTraffic() []byte {
	return []byte(strings.Repeat("G /index\nG /api/v1/users\nH /health\n", 16))
}

type asyncRun struct {
	st      kernelsim.ExitStatus
	g       *guard.Guard
	reports []guard.ViolationReport
	pool    guard.AsyncPoolStats
}

// runWorkload executes one protected run. faultSeed != 0 attaches a
// seeded stream-fault plan; in async runs the same plan doubles as the
// worker-fault source (its side draws never perturb the stream draws, so
// a sync run with an equal seed sees identical trace bytes).
func runWorkload(t *testing.T, a *analyzed, input []byte, mode guard.DegradedMode, async bool, faultSeed int64, wf guard.WorkerFaults) asyncRun {
	t.Helper()
	k := kernelsim.New()
	p, err := a.app.Spawn(k, input)
	if err != nil {
		t.Fatal(err)
	}
	km := guard.InstallModule(k)
	pol := guard.DefaultPolicy()
	pol.OnDegraded = mode
	pol.Async = async
	var plan *faults.Plan
	if faultSeed != 0 {
		plan = faults.FromSeed(faultSeed)
	}
	var ap *guard.AsyncPool
	if async {
		ap = guard.NewAsyncPool(2, 0)
		defer ap.Close()
		switch {
		case wf != nil:
			ap.InjectFaults(wf)
		case plan != nil:
			ap.InjectFaults(plan)
		}
		km.UseAsync(ap)
	}
	g, err := km.Protect(p, a.ocfg, a.ig, pol)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		g.Tracer.Fault = plan
	}
	st, err := k.Run(p, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	km.Shutdown()
	out := asyncRun{st: st, g: g, reports: km.ReportsSnapshot()}
	if ap != nil {
		out.pool = ap.Snapshot()
	}
	return out
}

// diffRunStats compares every guard.Stats counter except the
// async-scheduling ones.
func diffRunStats(sync, async *guard.Stats) []string {
	var divs []string
	vs, va := reflect.ValueOf(sync).Elem(), reflect.ValueOf(async).Elem()
	for i := 0; i < vs.NumField(); i++ {
		name := vs.Type().Field(i).Name
		if asyncOnlyStats[name] {
			continue
		}
		if sv, av := vs.Field(i).Uint(), va.Field(i).Uint(); sv != av {
			divs = append(divs, fmt.Sprintf("%s: sync=%d async=%d", name, sv, av))
		}
	}
	return divs
}

// TestAsyncConformanceEndToEnd is the pipeline's transparency contract,
// measured with live racing workers: for benign and exploit workloads,
// under every degraded mode, with and without stream faults, the
// asynchronous run must match the synchronous run on exit status, kill
// verdicts, violation reports, and every verdict-bearing counter.
func TestAsyncConformanceEndToEnd(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), []byte("G /x\nP 32\nH /h\n"))
	as, err := a.app.Load()
	if err != nil {
		t.Fatal(err)
	}
	rop, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}

	modes := []guard.DegradedMode{guard.FailClosed, guard.FailOpen, guard.SlowPathRetry}
	workloads := []struct {
		name  string
		input []byte
	}{
		{"benign", heavyTraffic()},
		{"rop", rop},
	}
	for _, mode := range modes {
		for _, w := range workloads {
			for _, seed := range []int64{0, 11} {
				name := fmt.Sprintf("%v/%s/seed%d", mode, w.name, seed)
				t.Run(name, func(t *testing.T) {
					sr := runWorkload(t, a, w.input, mode, false, seed, nil)
					ar := runWorkload(t, a, w.input, mode, true, seed, nil)
					if sr.st.Exited != ar.st.Exited || sr.st.Killed != ar.st.Killed {
						t.Fatalf("exit status diverged: sync %+v, async %+v", sr.st, ar.st)
					}
					if len(sr.reports) != len(ar.reports) {
						t.Fatalf("violation reports diverged: sync %v, async %v", sr.reports, ar.reports)
					}
					if divs := diffRunStats(&sr.g.Stats, &ar.g.Stats); len(divs) != 0 {
						t.Fatalf("stats diverged:\n  %v", divs)
					}
				})
			}
		}
	}
}

// alwaysStall wedges every worker task for d.
type alwaysStall struct{ d time.Duration }

func (s alwaysStall) WorkerStall() time.Duration { return s.d }
func (alwaysStall) WorkerCrash() bool            { return false }

// alwaysCrash panics every worker task at pickup (the injected,
// pre-pickup containment case).
type alwaysCrash struct{}

func (alwaysCrash) WorkerStall() time.Duration { return 0 }
func (alwaysCrash) WorkerCrash() bool          { return true }

// panicOnce panics from inside the worker's fault hook exactly n times —
// a stand-in for a real worker bug (not the injected sentinel), so the
// recovery path must poison the window and resolve it under policy.
type panicOnce struct{ left int32 }

func (p *panicOnce) WorkerStall() time.Duration {
	if atomic.AddInt32(&p.left, -1) >= 0 {
		panic("worker wedged beyond repair")
	}
	return 0
}
func (*panicOnce) WorkerCrash() bool { return false }

// TestAsyncInjectedWorkerFaultsAreVerdictTransparent: a pool whose
// workers permanently stall or crash at every pickup still produces the
// synchronous run's exact verdicts — the gate, the producer backstop and
// the watchdog absorb the loss of the entire worker pool.
func TestAsyncInjectedWorkerFaultsAreVerdictTransparent(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	input := heavyTraffic()
	sr := runWorkload(t, a, input, guard.FailClosed, false, 0, nil)
	if !sr.st.Exited {
		t.Fatalf("baseline benign run: %+v, reports %v", sr.st, sr.reports)
	}

	t.Run("crash-storm", func(t *testing.T) {
		ar := runWorkload(t, a, input, guard.FailClosed, true, 0, alwaysCrash{})
		if !ar.st.Exited || ar.st.Killed {
			t.Fatalf("crash-storm run: %+v, reports %v", ar.st, ar.reports)
		}
		if divs := diffRunStats(&sr.g.Stats, &ar.g.Stats); len(divs) != 0 {
			t.Fatalf("stats diverged under crash storm:\n  %v", divs)
		}
		if ar.pool.Crashes == 0 {
			t.Fatal("no crashes recorded; injection did not fire (no region-full capture?)")
		}
		if ar.g.Stats.WorkerCrashes == 0 {
			t.Fatal("contained crashes were not folded into guard.Stats")
		}
	})
	t.Run("stall-storm", func(t *testing.T) {
		ar := runWorkload(t, a, input, guard.FailClosed, true, 0, alwaysStall{d: 300 * time.Microsecond})
		if !ar.st.Exited || ar.st.Killed {
			t.Fatalf("stall-storm run: %+v, reports %v", ar.st, ar.reports)
		}
		if divs := diffRunStats(&sr.g.Stats, &ar.g.Stats); len(divs) != 0 {
			t.Fatalf("stats diverged under stall storm:\n  %v", divs)
		}
		if ar.pool.Stalls == 0 {
			t.Fatal("no stalls recorded; injection did not fire")
		}
	})
}

// TestAsyncRealWorkerPanicResolvesUnderPolicy: a genuine worker bug (a
// panic outside the injected-crash sentinel) poisons the guard's window;
// every OnDegraded mode must contain it — the traced process's fate is
// decided by policy, never by the dying worker's goroutine.
func TestAsyncRealWorkerPanicResolvesUnderPolicy(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	input := heavyTraffic()

	for _, mode := range []guard.DegradedMode{guard.FailClosed, guard.FailOpen, guard.SlowPathRetry} {
		t.Run(mode.String(), func(t *testing.T) {
			ar := runWorkload(t, a, input, mode, true, 0, &panicOnce{left: 1})
			if ar.pool.Crashes == 0 {
				t.Fatal("the worker panic was not recorded; injection did not fire")
			}
			if ar.g.Stats.WorkerCrashes == 0 {
				t.Fatal("the contained panic was not folded into guard.Stats")
			}
			switch mode {
			case guard.FailOpen, guard.SlowPathRetry:
				// Both modes must let the benign process live: fail-open by
				// fiat, slow-path-retry because the trace itself is intact
				// and a fresh full-precision decode recovers it.
				if !ar.st.Exited || ar.st.Killed {
					t.Fatalf("benign process did not survive: %+v, reports %v", ar.st, ar.reports)
				}
			case guard.FailClosed:
				// The poison is consumed by whichever check follows it; if
				// that check's window was incremental the verdict is a
				// fail-closed kill, and the two ledgers must agree.
				if ar.st.Killed != (ar.g.Stats.FailClosures > 0) {
					t.Fatalf("kill (%v) disagrees with FailClosures (%d)",
						ar.st.Killed, ar.g.Stats.FailClosures)
				}
			}
		})
	}
}
