package guard_test

// Tests of the slow path's precision layers (§5.3): the shadow stack
// catches backward-edge abuse that stays inside the ITC-CFG, and the
// TypeArmor forward-edge policy shares the false negative the paper
// admits for valid-signature abuse (§7.1.2 "Control Jujutsu").

import (
	"strings"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
	"flowguard/internal/trace/ipt"
)

const (
	r0 = isa.R0
	r1 = isa.R1
	r2 = isa.R2
	r5 = isa.R5
	r6 = isa.R6
	r7 = isa.R7
	r8 = isa.R8
	r9 = isa.R9
	fp = isa.FP
)

// retSwapApp: main calls f from two sites. f, when fed the trigger byte,
// rewrites its own saved return address from site A's continuation to
// site B's — a return that is statically valid (both are matched return
// addresses of f, so the O-CFG and ITC-CFG both contain the edge) but
// dynamically wrong. Only the shadow stack can tell.
func retSwapApp(t *testing.T) *module.AddressSpace {
	t.Helper()
	b := asm.NewModule("retswap").Needs("libc")
	b.DataSpace("in", 8, false)
	b.DataSpace("aret", 8, false)
	b.DataSpace("bret", 8, false)
	b.DataBytes("banner", []byte("hi\n"), false)
	b.DataBytes("ma", []byte("A"), false)
	b.DataBytes("mb", []byte("B"), false)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(64)
	// Publish the two continuation addresses (an artificial corruption
	// primitive standing in for a stack-memory bug).
	main.AddrOfLabel(r9, "Aret")
	main.AddrOf(r8, "aret")
	main.St(r8, 0, r9)
	main.AddrOfLabel(r9, "Bret")
	main.AddrOf(r8, "bret")
	main.St(r8, 0, r9)
	// Banner (builds indirect-branch history and triggers a benign
	// check).
	main.AddrOf(r0, "banner")
	main.Movi(r1, 3)
	main.Call("write_out")
	// read(0, in, 1)
	main.Movu64(r7, kernelsim.SysRead)
	main.Movi(r0, 0)
	main.AddrOf(r1, "in")
	main.Movi(r2, 1)
	main.Syscall()
	// Site A.
	main.Call("f")
	main.Label("Aret")
	main.AddrOf(r0, "ma")
	main.Movi(r1, 1)
	main.Call("write_out")
	// Site B.
	main.Call("f")
	main.Label("Bret")
	main.AddrOf(r0, "mb")
	main.Movi(r1, 1)
	main.Call("write_out")
	main.Movi(r0, 0)
	main.Call("exit")
	main.Halt()

	f := b.Func("f", 0, false)
	f.Prologue(16)
	f.AddrOf(r9, "in")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, 'X')
	f.Jcc(isa.NE, "ok")
	// Corrupt the saved return address: retaddr += (Bret - Aret).
	f.AddrOf(r9, "bret")
	f.Ld(r6, r9, 0)
	f.AddrOf(r9, "aret")
	f.Ld(r5, r9, 0)
	f.Sub(r6, r5) // delta
	f.Ld(r9, fp, 8)
	f.Add(r9, r6)
	f.St(fp, 8, r9)
	f.Label("ok")
	f.Epilogue()

	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, map[string]*module.Module{"libc": libcFor(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

// libcFor rebuilds the standard libc for the bespoke apps here without
// importing internal/apps (which would be circular in spirit: these are
// guard-level tests).
func libcFor(t *testing.T) *module.Module {
	t.Helper()
	b := asm.NewModule("libc")
	f := b.Func("write_out", 2, true)
	f.Mov(r2, r1)
	f.Mov(r1, r0)
	f.Movi(r0, 1)
	f.Movu64(r7, kernelsim.SysWrite)
	f.Syscall()
	f.Ret()
	f = b.Func("exit", 1, true)
	f.Movu64(r7, kernelsim.SysExit)
	f.Syscall()
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func analyzeAS(t *testing.T, as *module.AddressSpace) (*cfg.Graph, *itc.Graph) {
	t.Helper()
	g, err := cfg.Build(as)
	if err != nil {
		t.Fatal(err)
	}
	return g, itc.FromCFG(g)
}

func runBespoke(t *testing.T, exec *module.Module, libs map[string]*module.Module,
	ocfg *cfg.Graph, ig *itc.Graph, input []byte) (kernelsim.ExitStatus, []guard.ViolationReport, []byte) {
	t.Helper()
	k := kernelsim.New()
	p, err := k.Spawn("bespoke", exec, libs, nil, input)
	if err != nil {
		t.Fatal(err)
	}
	km := guard.InstallModule(k)
	if _, err := km.Protect(p, ocfg, ig, guard.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, km.Reports, p.Stdout
}

func trainAS(t *testing.T, ig *itc.Graph, exec *module.Module, libs map[string]*module.Module, inputs ...[]byte) {
	t.Helper()
	for _, in := range inputs {
		k := kernelsim.New()
		p, err := k.Spawn("train", exec, libs, nil, in)
		if err != nil {
			t.Fatal(err)
		}
		tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			t.Fatal(err)
		}
		p.CPU.Branch = tr
		if st, err := k.Run(p, 10_000_000); err != nil || !st.Exited {
			t.Fatalf("training: %v %v", st, err)
		}
		tr.Flush()
		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		ig.ObserveWindow(ipt.ExtractTIPs(evs))
	}
	ig.RebuildCache()
}

// TestShadowStackCatchesReturnSwap: the hijacked return lands on a
// statically valid return address of f, so the fast path's graphs accept
// the edge structurally; the untrained pairing routes it to the slow
// path, whose shadow stack flags the mismatch — the §5.3 single-target
// backward-edge policy in action.
func TestShadowStackCatchesReturnSwap(t *testing.T) {
	libs := map[string]*module.Module{"libc": libcFor(t)}
	as := retSwapApp(t)
	ocfg, ig := analyzeAS(t, as)

	// The corrupted edge is statically legal in the O-CFG: both
	// continuations are matched return addresses of f.
	var fRets []uint64
	for _, fn := range ocfg.Funcs {
		if strings.HasSuffix(fn.Name, "!f") {
			fRets = fn.RetTargets
		}
	}
	if len(fRets) != 2 {
		t.Fatalf("f has %d matched return addresses, want 2", len(fRets))
	}

	exec := as.Exec.Mod
	trainAS(t, ig, exec, libs, []byte("N"), []byte("N"))

	// Benign: exits cleanly, prints A then B.
	st, reports, out := runBespoke(t, exec, libs, ocfg, ig, []byte("N"))
	if !st.Exited || len(reports) != 0 {
		t.Fatalf("benign: %v %v", st, reports)
	}
	if string(out) != "hi\nAB" {
		t.Fatalf("benign output = %q", out)
	}

	// Attack: the swap must die at the post-hijack write, diagnosed by
	// the shadow stack.
	st, reports, out = runBespoke(t, exec, libs, ocfg, ig, []byte("X"))
	if !st.Killed {
		t.Fatalf("return swap not killed: %v (out=%q)", st, out)
	}
	if len(reports) == 0 || !strings.Contains(reports[0].Reason, "shadow stack") {
		t.Fatalf("reports = %v, want a shadow-stack diagnosis", reports)
	}
	t.Logf("report: %v", reports[0])
}

// validSigApp: a dispatch table holds two same-arity handlers; the input
// selects the index. Redirecting the "pointer" to the other handler uses
// only valid, matching-signature edges — the Control-Jujutsu-style abuse
// the paper concedes no static CFI (including FlowGuard's slow path)
// can stop (§7.1.2: "share the same false negatives due to the
// limitation of static analysis").
func validSigApp(t *testing.T) (*module.Module, map[string]*module.Module) {
	t.Helper()
	b := asm.NewModule("jujutsu").Needs("libc")
	b.DataSpace("in", 8, false)
	b.FuncTable("handlers", []string{"h_user", "h_admin"}, false)
	b.DataBytes("mu", []byte("user\n"), false)
	b.DataBytes("madm", []byte("ADMIN\n"), false)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(32)
	main.Movu64(r7, kernelsim.SysRead)
	main.Movi(r0, 0)
	main.AddrOf(r1, "in")
	main.Movi(r2, 1)
	main.Syscall()
	// idx = in[0] & 1 — the "corrupted function pointer".
	main.AddrOf(r9, "in")
	main.Ldb(r8, r9, 0)
	main.Movi(r5, 1)
	main.And(r8, r5)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.AddrOf(r6, "handlers")
	main.Add(r6, r8)
	main.Ld(r6, r6, 0)
	main.Movi(r0, 7)
	main.CallR(r6)
	main.Movi(r0, 0)
	main.Call("exit")
	main.Halt()

	h := b.Func("h_user", 1, false)
	h.Prologue(0)
	h.AddrOf(r0, "mu")
	h.Movi(r1, 5)
	h.Call("write_out")
	h.Epilogue()
	h = b.Func("h_admin", 1, false)
	h.Prologue(0)
	h.AddrOf(r0, "madm")
	h.Movi(r1, 6)
	h.Call("write_out")
	h.Epilogue()

	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return m, map[string]*module.Module{"libc": libcFor(t)}
}

// TestValidSignatureAbuseIsAFalseNegative documents the acknowledged
// limitation: flipping the dispatch index to a same-signature handler is
// not detected — every traversed edge is in the graphs and survives the
// slow path's TypeArmor policy — but the slow path is exercised (the
// flipped edge was untrained) and its clean verdict is honest.
func TestValidSignatureAbuseIsAFalseNegative(t *testing.T) {
	exec, libs := validSigApp(t)
	as, err := module.Load(exec, libs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ocfg, ig := analyzeAS(t, as)
	// Train only the benign handler path.
	trainAS(t, ig, exec, libs, []byte{0}, []byte{0})

	st, reports, out := runBespoke(t, exec, libs, ocfg, ig, []byte{1})
	if st.Killed {
		t.Fatalf("valid-signature dispatch killed: %v — this is legal flow", reports)
	}
	if !strings.Contains(string(out), "ADMIN") {
		t.Fatalf("output = %q, abuse did not run", out)
	}
	if len(reports) != 0 {
		t.Fatalf("unexpected reports: %v", reports)
	}
}
