package guard

// White-box tests of the fast path's window-collection logic (§5.3):
// synthetic branch streams drive the tracer, and the selected TIP
// windows are checked against the pkt_count and module-stride rules.

import (
	"bytes"
	"reflect"
	"testing"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// windowFixture builds a two-module address space (exec + one lib) and a
// tracer fed with synthetic indirect branches at chosen addresses.
type windowFixture struct {
	as   *module.AddressSpace
	tr   *ipt.Tracer
	g    *Guard
	exec uint64 // a code address inside the executable
	lib  uint64 // a code address inside the library
}

func newWindowFixture(t testing.TB, pol Policy) *windowFixture {
	t.Helper()
	lb := asm.NewModule("lib")
	lf := lb.Func("lfn", 0, true)
	for i := 0; i < 16; i++ {
		lf.Nop()
	}
	lf.Ret()
	libm, err := lb.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	eb := asm.NewModule("app").Needs("lib")
	ef := eb.Func("main", 0, true)
	eb.SetEntry("main")
	for i := 0; i < 16; i++ {
		ef.Nop()
	}
	ef.Halt()
	execm, err := eb.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(execm, map[string]*module.Module{"lib": libm}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := ipt.NewTracer(ipt.NewToPA(1 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ipt.CtlTraceEn|ipt.CtlBranchEn|ipt.CtlUser|ipt.CtlToPA); err != nil {
		t.Fatal(err)
	}
	// The guard under test does not need real graphs for window logic.
	g := New(as, nil, nil, tr, pol)
	return &windowFixture{
		as:   as,
		tr:   tr,
		g:    g,
		exec: as.Exec.CodeBase + 8,
		lib:  as.Mods[1].CodeBase + 8,
	}
}

// emitTIP pushes one synthetic indirect branch targeting addr.
func (w *windowFixture) emitTIP(addr uint64) {
	w.tr.Branch(trace.Branch{Class: isa.CoFIIndirect, Source: addr, Target: addr, Taken: true})
}

func tipsOf(t *testing.T, g *Guard) []ipt.TIPRecord {
	t.Helper()
	tips, _, _, _, err := g.window()
	if err != nil {
		t.Fatal(err)
	}
	return tips
}

func TestWindowEmptyTrace(t *testing.T) {
	f := newWindowFixture(t, DefaultPolicy())
	if tips := tipsOf(t, f.g); len(tips) != 0 {
		t.Fatalf("window over empty trace = %d records", len(tips))
	}
}

func TestWindowHonorsPktCount(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 8
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	for i := 0; i < 100; i++ {
		f.emitTIP(f.exec)
	}
	tips := tipsOf(t, f.g)
	if len(tips) != 8 {
		t.Fatalf("window = %d TIPs, want exactly pkt_count 8 when stride is off", len(tips))
	}
}

// TestWindowExtendsForStride: the last pkt_count TIPs are all in the
// library; the window must grow backwards until it includes executable
// packets (§5.3/§7.1.1: "ensured to check packets striding across more
// than one modules, and at least one of them is within the executable").
func TestWindowExtendsForStride(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 8
	f := newWindowFixture(t, pol)
	f.emitTIP(f.exec) // old executable history
	for i := 0; i < 40; i++ {
		f.emitTIP(f.lib) // long library run (the return-to-lib pattern)
	}
	tips := tipsOf(t, f.g)
	if len(tips) <= 8 {
		t.Fatalf("window = %d TIPs; stride rule should have extended past pkt_count", len(tips))
	}
	hasExec := false
	for _, r := range tips {
		if f.as.Exec.ContainsCode(r.IP) {
			hasExec = true
		}
	}
	if !hasExec {
		t.Fatal("extended window still lacks an executable packet")
	}
}

// TestWindowBestEffortWhenStrideImpossible: if the whole buffer is
// library-only, the window is best-effort rather than empty.
func TestWindowBestEffortWhenStrideImpossible(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 8
	f := newWindowFixture(t, pol)
	for i := 0; i < 20; i++ {
		f.emitTIP(f.lib)
	}
	tips := tipsOf(t, f.g)
	if len(tips) == 0 {
		t.Fatal("stride-impossible window came back empty")
	}
}

// TestIncrementalWindowMatchesFullRescan: the amortized window cache
// must select exactly the window a from-scratch rescan selects, check
// after check, including across ToPA wraps. A second guard over the same
// tracer has its cache invalidated before every call, forcing the
// non-amortized path as the reference.
func TestIncrementalWindowMatchesFullRescan(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		pol := DefaultPolicy()
		pol.PktCount = 8
		f := newWindowFixture(t, pol)
		if wrap {
			f.tr.Out = ipt.NewToPA(2048, 2048)
		}
		full := New(f.as, nil, nil, f.tr, pol)
		var scannedSum uint64
		for round := 0; round < 60; round++ {
			for i := 0; i < 1+round%17; i++ {
				addr := f.exec
				if (round+i)%3 == 1 {
					addr = f.lib
				}
				f.emitTIP(addr)
			}
			inc, incRegion, scanned, _, err := f.g.window()
			if err != nil {
				t.Fatalf("wrap=%v round %d: %v", wrap, round, err)
			}
			scannedSum += scanned
			full.InvalidateWindow()
			ref, refRegion, _, _, err := full.window()
			if err != nil {
				t.Fatalf("wrap=%v round %d (rescan): %v", wrap, round, err)
			}
			if !reflect.DeepEqual(inc, ref) {
				t.Fatalf("wrap=%v round %d: incremental window (%d TIPs) diverges from rescan (%d TIPs)",
					wrap, round, len(inc), len(ref))
			}
			if !bytes.Equal(incRegion, refRegion) {
				t.Fatalf("wrap=%v round %d: slow-path region diverges (%d vs %d bytes)",
					wrap, round, len(incRegion), len(refRegion))
			}
		}
		if !wrap && scannedSum != f.tr.Out.TotalWritten() {
			t.Fatalf("incremental path scanned %d bytes, stream has %d: bytes double-scanned or skipped",
				scannedSum, f.tr.Out.TotalWritten())
		}
		if wrap && scannedSum > f.tr.Out.TotalWritten() {
			t.Fatalf("incremental path scanned %d bytes of a %d-byte stream", scannedSum, f.tr.Out.TotalWritten())
		}
	}
}

// TestWrapPastWindowResyncs: when the producer wraps the ToPA past the
// incremental cache's tail, AppendSince can no longer serve the delta
// and the guard must resynchronize from a fresh snapshot. The resync is
// counted in Stats.Resyncs and classified HealthResynced — the span
// between the checks was evicted unchecked, which is overflow loss
// without an OVF marker — while a first check over an already-wrapped
// buffer stays clean (no coverage was promised before tracking began).
// The resynced check selects the same window a from-scratch guard
// selects, and the cache then resumes amortizing with clean health. An
// explicit InvalidateWindow also forces a rescan but is not a resync.
func TestWrapPastWindowResyncs(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 8
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	f.tr.Out = ipt.NewToPA(2048, 2048)

	// Prime the incremental cache.
	for i := 0; i < 50; i++ {
		f.emitTIP(f.exec)
	}
	tipsOf(t, f.g)
	if f.g.Stats.Resyncs != 0 {
		t.Fatalf("Resyncs = %d before any wrap", f.g.Stats.Resyncs)
	}

	// Outrun the cache: more new bytes than the whole buffer holds.
	for i := 0; i < 6000; i++ {
		f.emitTIP(f.exec)
	}
	inc, incRegion, _, health, err := f.g.window()
	if err != nil {
		t.Fatal(err)
	}
	if f.g.Stats.Resyncs != 1 {
		t.Fatalf("Resyncs = %d after wrap outran the cache, want 1", f.g.Stats.Resyncs)
	}
	if health != HealthResynced {
		t.Fatalf("health = %v; wrap past unchecked trace must classify as resynced", health)
	}
	if len(inc) != 8 {
		t.Fatalf("post-resync window = %d TIPs, want pkt_count 8", len(inc))
	}
	ref := New(f.as, nil, nil, f.tr, pol)
	refTips, refRegion, _, refHealth, err := ref.window()
	if err != nil {
		t.Fatal(err)
	}
	if refHealth != HealthClean {
		t.Fatalf("fresh guard's first check over a wrapped buffer = %v, want clean", refHealth)
	}
	if !reflect.DeepEqual(inc, refTips) || !bytes.Equal(incRegion, refRegion) {
		t.Fatalf("resynced window (%d TIPs, %d-byte region) diverges from a fresh guard's (%d TIPs, %d bytes)",
			len(inc), len(incRegion), len(refTips), len(refRegion))
	}

	// Small appends amortize again: no further resync, health clean.
	for i := 0; i < 5; i++ {
		f.emitTIP(f.exec)
	}
	if _, _, _, health, err := f.g.window(); err != nil || health != HealthClean {
		t.Fatalf("after a servable delta: health %v, err %v", health, err)
	}
	if f.g.Stats.Resyncs != 1 {
		t.Fatalf("Resyncs = %d after a servable delta, want still 1", f.g.Stats.Resyncs)
	}

	// Explicit invalidation rescans without counting as a resync: only
	// an AppendSince failure is the wrap-outran-us event.
	f.g.InvalidateWindow()
	tipsOf(t, f.g)
	if f.g.Stats.Resyncs != 1 {
		t.Fatalf("Resyncs = %d after InvalidateWindow, want still 1", f.g.Stats.Resyncs)
	}
}

// TestWindowSurvivesToPAWrap: after the circular buffer wraps, window
// collection must still sync and return records.
func TestWindowSurvivesToPAWrap(t *testing.T) {
	pol := DefaultPolicy()
	pol.PktCount = 8
	pol.RequireModuleStride = false
	f := newWindowFixture(t, pol)
	// Swap in a tiny two-region ToPA and overfill it several times.
	f.tr.Out = ipt.NewToPA(2048, 2048)
	f.g.Tracer = f.tr
	for i := 0; i < 8000; i++ {
		f.emitTIP(f.exec)
	}
	if f.tr.Out.TotalWritten() <= uint64(f.tr.Out.Capacity()) {
		t.Fatal("buffer did not wrap; test setup broken")
	}
	tips := tipsOf(t, f.g)
	if len(tips) < 8 {
		t.Fatalf("post-wrap window = %d TIPs", len(tips))
	}
}
