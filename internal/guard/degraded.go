package guard

// Degraded-mode checking (§7.1.2). The paper concedes that the ToPA
// buffer wrapping past unchecked trace, buffer-full PMIs and overflow
// gaps are the worst case for a trace-backed checker; real IPT
// additionally emits OVF packets whose aftermath must be resynchronized
// at the next PSB. This file decides what verdict the guard returns when
// the window it is asked to vouch for is damaged, stale, or missing:
// the trace-health classification happens in window(), the policy
// response here.

import (
	"flowguard/internal/trace/ipt"
)

// DegradedMode selects the guard's fail behavior when a window cannot be
// verified (overflow, gap, corruption) or a pooled check is shed under
// overload.
type DegradedMode uint8

// Degraded-mode policies. The zero value is FailClosed: an unverifiable
// window is treated exactly like a detected violation, which preserves
// the security invariant at the price of killing a benign process whose
// trace was damaged.
const (
	// FailClosed returns a violation for any unverifiable window.
	FailClosed DegradedMode = iota
	// FailOpen lets the endpoint proceed, counting the unverified pass
	// in Stats.FailOpens. Records that did survive decoding are still
	// checked best-effort: a definite ITC-CFG mismatch among them fires
	// regardless.
	FailOpen
	// SlowPathRetry re-snapshots the ToPA and retries a full-precision
	// decode from successive sync points (bounded by Policy.RetryMax,
	// with exponential backoff); if no attempt yields a verifiable
	// window covering the stream tail, the check fails closed.
	SlowPathRetry
)

var degradedNames = [...]string{
	FailClosed: "fail-closed", FailOpen: "fail-open", SlowPathRetry: "slow-path-retry",
}

func (m DegradedMode) String() string {
	if int(m) < len(degradedNames) {
		return degradedNames[m]
	}
	return "degraded-mode(?)"
}

// TraceHealth classifies the state of the trace window a check ran over.
type TraceHealth uint8

// Trace-health classes, in increasing order of damage.
const (
	// HealthClean: the stream decoded without loss since the last check.
	HealthClean TraceHealth = iota
	// HealthResynced: one or more OVF packets were decoded — trace bytes
	// were lost upstream — or an overflow still awaits its
	// resynchronizing PSB, leaving the stream tail unvouched-for.
	HealthResynced
	// HealthGap: the wrapped buffer holds no sync point at all, so not a
	// single resident byte can be attributed to the control flow.
	HealthGap
	// HealthMalformed: the resident bytes violate the packet grammar
	// (ipt.ErrMalformedTrace); corruption, not legitimate execution.
	HealthMalformed
)

var healthNames = [...]string{
	HealthClean: "clean", HealthResynced: "resynced", HealthGap: "gap", HealthMalformed: "malformed",
}

func (h TraceHealth) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return "health(?)"
}

// DefaultRetryMax bounds SlowPathRetry recovery attempts when
// Policy.RetryMax is zero.
const DefaultRetryMax = 3

// CyclesPerRetryBackoff is the modeled cost of the first retry backoff
// step; each further attempt doubles it (the §6 cost model treats the
// re-snapshot stall as interception-class overhead).
const CyclesPerRetryBackoff = 2000

// resolveDegradedOn turns an unhealthy window into a policy-governed
// verdict. Called with the guard's mutex held, after windowOn()
// classified res.Health (never HealthClean here). The window cache and
// trace source are explicit so the same policy serves the process-level
// stream and each per-thread stream.
//
//fg:cold runs only on unhealthy windows, never on the clean steady state
func (g *Guard) resolveDegradedOn(res *Result, w *winState, topa *ipt.ToPA, tips []ipt.TIPRecord, region []byte, decodeErr error) {
	res.Degraded = true
	g.Stats.DegradedChecks++
	detail := res.Health.String()
	if decodeErr != nil {
		detail = decodeErr.Error()
	}
	switch g.Policy.OnDegraded {
	case FailOpen:
		// Best effort first: whatever survived decoding is still
		// checked, so a definite violation among the surviving records
		// fires even in fail-open mode.
		if len(tips) >= 2 {
			g.runChecks(res, tips, region, false)
			if res.Verdict == VerdictViolation {
				return
			}
		}
		g.Stats.FailOpens++
		res.Verdict = VerdictClean
		res.Reason = "degraded trace (" + detail + "): fail open"
	case SlowPathRetry:
		if res.Health == HealthResynced && w.dec.Synced() && g.tailCovered(w, tips) {
			// The stream resynchronized on its own and the surviving
			// window still vouches for the flow reaching the endpoint:
			// verify it with full precision instead of the credit
			// heuristics.
			g.runChecks(res, tips, region, true)
			return
		}
		g.retrySlowPath(res, w, topa, detail)
	default: // FailClosed
		g.Stats.FailClosures++
		res.Verdict = VerdictViolation
		res.Reason = "degraded trace (" + detail + "): fail closed"
	}
}

// retrySlowPath is SlowPathRetry's recovery loop: drop the poisoned
// window cache, re-snapshot the ToPA, and attempt a decode from each
// successive sync point — skipping past damaged spans — until one
// attempt yields a clean, tail-synced window. The verdict then comes
// from a forced slow path over that window; if every attempt fails, the
// check fails closed: no verifiable evidence reaches the endpoint, and
// the guard refuses to vouch for it.
func (g *Guard) retrySlowPath(res *Result, w *winState, topa *ipt.ToPA, detail string) {
	max := g.Policy.RetryMax
	if max <= 0 {
		max = DefaultRetryMax
	}
	wrapLoss := w.wrapLoss
	w.src = nil // recovery always restarts from a fresh snapshot
	buf := topa.Snapshot()
	pts := ipt.SyncPoints(buf)
	attempts := len(pts)
	if attempts > max {
		attempts = max
	}
	if attempts == 0 {
		attempts = 1 // probing an empty/sync-less snapshot still costs one attempt
	}
	for attempt := 0; attempt < attempts; attempt++ {
		g.Stats.Retries++
		res.Retries++
		res.OtherCycles += CyclesPerRetryBackoff << uint(attempt)
		if attempt >= len(pts) {
			break
		}
		start := pts[attempt]
		evs, err := ipt.DecodeFast(buf[start:])
		if err != nil {
			continue
		}
		tips := ipt.ExtractTIPs(evs)
		if !recoveredTailOK(evs, tips) {
			continue // the loss seam reaches the endpoint: unvouched-for
		}
		if wrapLoss && len(tips) < g.Policy.PktCount {
			continue // post-wrap-loss window too thin to vouch for the tail
		}
		scanned := uint64(len(buf) - start)
		g.Stats.BytesScanned += scanned
		res.DecodeCycles += uint64(float64(scanned) * g.fastDecodeCost())
		res.TIPs = len(tips)
		g.runChecks(res, tips, buf[start:], true)
		return
	}
	g.Stats.FailClosures++
	res.Verdict = VerdictViolation
	res.Reason = "degraded trace (" + detail + "): recovery retries exhausted, fail closed"
}

// tailCovered is the tail rule for the incremental window: a verdict
// vouches for the execution immediately preceding the endpoint, so at
// least one checkable record pair must postdate the last overflow. An
// endpoint reached right behind a loss seam has no verified flow behind
// it — the §7.1.2 worst case of losing exactly the attack evidence must
// fail closed, not pass. After a wrap loss (trace evicted unchecked,
// with no OVF marker to resynchronize from) the whole resident window
// postdates the loss, so the bar is the policy's full packet count: a
// thin post-loss window is exactly what a flood that erased the attack
// evidence right before the endpoint leaves behind.
func (g *Guard) tailCovered(w *winState, tips []ipt.TIPRecord) bool {
	if w.wrapLoss && len(tips) < g.Policy.PktCount {
		return false
	}
	lastOVF := w.dec.LastOVFOff()
	if lastOVF < 0 {
		return len(tips) >= 2
	}
	return len(ipt.TipsFrom(tips, lastOVF)) >= 2
}

// recoveredTailOK is the same tail rule over a freshly re-decoded
// snapshot suffix: an OVF with no later PSB leaves zero post-loss
// records, and an OVF resynchronized immediately before the endpoint
// leaves too few.
func recoveredTailOK(evs []ipt.Event, tips []ipt.TIPRecord) bool {
	lastOVF := -1
	for _, e := range evs {
		if e.Kind == ipt.KindOVF {
			lastOVF = e.Off
		}
	}
	if lastOVF < 0 {
		return len(tips) >= 2
	}
	return len(ipt.TipsFrom(tips, lastOVF)) >= 2
}

// noteShed accounts for a check the pool shed before it could run: the
// result was synthesized by CheckPool.Do under Policy.OnDegraded, and
// the guard's statistics must reflect it so nothing is dropped silently.
func (g *Guard) noteShed(res *Result) { g.noteShedKind(res, false) }

// noteFairnessShed accounts for a check shed by per-tenant fairness
// (FleetPool refused admission to an over-share tenant): the same
// degraded accounting as an overload shed, plus the fairness counter so
// fleet stats distinguish "the pool was full" from "your tenant was
// hogging it".
func (g *Guard) noteFairnessShed(res *Result) { g.noteShedKind(res, true) }

func (g *Guard) noteShedKind(res *Result, fairness bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.Stats.Checks++
	g.Stats.DegradedChecks++
	g.Stats.Shed++
	if fairness {
		g.Stats.FairnessSheds++
	}
	if res.Verdict == VerdictViolation {
		g.Stats.Violations++
		g.Stats.FailClosures++
	} else {
		g.Stats.FailOpens++
	}
}
