package guard_test

// Per-binary sharing tests: a Binary's artifact, graphs and approval
// cache are referenced by every guard built over it — the regression
// pins here fail if per-process state ever grows a copy of the
// artifact (by allocation count and by bytes).

import (
	"runtime"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// maxGuardBytes bounds the marginal heap footprint of one fleet guard
// (the Guard struct plus allocator slack — no window buffer yet, no
// artifact copy). The artifact itself is tens of kilobytes; a guard
// must stay a small fixed-size stub.
const maxGuardBytes = 2048

func fleetBinaryFixture(t *testing.T) (*analyzed, *guard.Binary) {
	t.Helper()
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, err := a.app.Load()
	if err != nil {
		t.Fatal(err)
	}
	return a, guard.NewBinary(as, a.ocfg, a.ig.Artifact())
}

// TestBinaryGuardsShareState pins pointer identity: every guard of a
// Binary — including forked children — probes the same artifact and
// the same pooled approval cache, never a copy.
func TestBinaryGuardsShareState(t *testing.T) {
	_, bin := fleetBinaryFixture(t)
	if bin.Art.Size() == 0 {
		t.Fatal("trained artifact is empty")
	}
	tr := ipt.NewTracer(ipt.NewToPA(1 << 16))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		t.Fatal(err)
	}
	guards := make([]*guard.Guard, 100)
	for i := range guards {
		guards[i] = bin.NewGuard(tr, guard.DefaultPolicy())
	}
	for i, g := range guards {
		if g.Artifact() != bin.Art {
			t.Fatalf("guard %d holds a different artifact pointer", i)
		}
		if g.Approvals() != bin.Appr {
			t.Fatalf("guard %d holds a different approval cache", i)
		}
	}
	child := guard.ForkGuard(guards[0], nil, tr)
	if child.Artifact() != bin.Art {
		t.Fatal("forked child does not share the parent's artifact")
	}
	if child.Approvals() != guards[0].Approvals() {
		t.Fatal("forked child does not share the parent's live approval cache")
	}
	if child.AS != guards[0].AS {
		t.Fatal("forked child with nil address space does not share the parent's")
	}
	if child.Stats.ForkInherits != 1 {
		t.Fatalf("forked child inherits count = %d, want 1", child.Stats.ForkInherits)
	}
	if child.Stats.Checks != 0 {
		t.Fatal("forked child did not get a fresh stats block")
	}
}

// TestGuardNoArtifactCopyPin is the fleet no-copy regression pin:
// building a guard over a Binary performs exactly one allocation (the
// Guard struct itself), and the marginal bytes per guard stay orders of
// magnitude below the artifact it references. If a change ever embeds
// artifact or table state per process, both bounds break loudly.
func TestGuardNoArtifactCopyPin(t *testing.T) {
	_, bin := fleetBinaryFixture(t)
	pol := guard.DefaultPolicy()

	if allocs := testing.AllocsPerRun(200, func() {
		_ = bin.NewGuard(nil, pol)
	}); allocs > 1 {
		t.Errorf("Binary.NewGuard allocates %.0f objects per guard, want 1", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		parent := bin.NewGuard(nil, pol)
		_ = guard.ForkGuard(parent, nil, nil)
	}); allocs > 2 {
		t.Errorf("NewGuard+ForkGuard allocate %.0f objects, want 2", allocs)
	}

	const n = 1000
	guards := make([]*guard.Guard, n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := range guards {
		guards[i] = bin.NewGuard(nil, pol)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perGuard := int(after.HeapAlloc-before.HeapAlloc) / n
	if perGuard > maxGuardBytes {
		t.Errorf("marginal per-guard footprint %d bytes exceeds %d", perGuard, maxGuardBytes)
	}
	if perGuard >= bin.Art.Size() {
		t.Errorf("per-guard footprint %d bytes >= artifact size %d: state is being copied", perGuard, bin.Art.Size())
	}
	runtime.KeepAlive(guards)
}

// TestKernelModuleForkInheritance drives the full fleet fork path
// in-package: a protected, artifact-backed forkd parent forks under the
// kernel module, every child is protected by inheritance before it
// runs (onFork → ProtectForked), and the inherited guards share the
// parent's artifact and approvals while keeping their own ledgers.
func TestKernelModuleForkInheritance(t *testing.T) {
	a := analyze(t, apps.Forkd())
	a.train(t, []byte("abcdabcd"), []byte("dcbaadbc"))
	art := a.ig.Artifact()

	k := kernelsim.New()
	km := guard.InstallModule(k)
	p, err := a.app.Spawn(k, []byte("abFcdFab"))
	if err != nil {
		t.Fatal(err)
	}
	parent, err := km.Protect(p, a.ocfg, a.ig, guard.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	parent.UseArtifact(art)

	sts, err := k.RunInterleaved([]*kernelsim.Process{p}, 200, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Two 'F' commands, executed by parent and first child alike (the
	// stdin cursor is inherited): 1 → 4 processes.
	const wantProcs = 4
	if len(sts) != wantProcs {
		t.Fatalf("got %d exit statuses, want %d", len(sts), wantProcs)
	}
	for i, st := range sts {
		if !st.Exited {
			t.Errorf("process %d did not survive the trained fork storm: %v", i, st)
		}
	}
	if reports := km.ReportsSnapshot(); len(reports) != 0 {
		t.Fatalf("false positives on a trained fork storm: %v", reports)
	}
	guards := km.Guards()
	if len(guards) != wantProcs {
		t.Fatalf("%d guards for %d processes: children ran unguarded", len(guards), wantProcs)
	}
	var inherits, checks uint64
	for _, g := range guards {
		if g.Artifact() != art {
			t.Error("a forked guard does not share the parent's artifact")
		}
		if g.Approvals() != parent.Approvals() {
			t.Error("a forked guard does not share the parent's approval cache")
		}
		inherits += g.Stats.ForkInherits
		checks += g.Stats.Checks
	}
	if inherits != wantProcs-1 {
		t.Errorf("%d ForkInherits across %d processes, want %d", inherits, wantProcs, wantProcs-1)
	}
	if checks == 0 {
		t.Error("no endpoint checks ran anywhere in the storm")
	}
	// Cloning the live approval store yields an equal-size, independent
	// snapshot — what a conformance twin is pre-trained with.
	clone := parent.Approvals().Clone()
	if clone == parent.Approvals() {
		t.Fatal("Clone returned the live store itself")
	}
	if clone.Len() != parent.Approvals().Len() {
		t.Fatalf("clone holds %d approvals, live store %d", clone.Len(), parent.Approvals().Len())
	}
}
