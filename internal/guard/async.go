package guard

// Asynchronous checking pipeline (DESIGN.md §9). The synchronous design
// puts the whole decode+check latency of the window on the intercepted
// syscall's critical path; Griffin-style offloading moves the decode off
// it: every time a ToPA region fills, the filled span is captured (copied
// out while still resident) and handed to a background worker pool that
// advances the guard's incremental window decoder between endpoints. The
// endpoint gate then only waits for the pipeline to catch up to the
// staleness bound and decodes the residual tail itself.
//
// The pipeline is verdict-transparent by construction: workers feed the
// same winState the synchronous path feeds, chunk boundaries do not
// change ipt.WindowDecoder results (Feed is chunking-invariant), and the
// gate always completes decoding up to the current write offset before
// deciding. The only place asynchrony could diverge is wrap-loss
// classification — a worker may pre-decode bytes a synchronous checker
// would have lost to the wrap — and winState.checkedTotal closes that
// hole: loss is always judged against the last verdict, not the last
// decode (see window()).

import (
	"runtime"
	"sync"
	"time"

	"flowguard/internal/trace/ipt"
)

// Defaults for the zero values of the async Policy knobs.
const (
	// DefaultMaxLagWindows is the staleness bound: a gate takes at most
	// this many captured-but-unchecked windows onto the critical path
	// without first waiting for the workers.
	DefaultMaxLagWindows = 2
	// DefaultAsyncGateWait bounds the gate's catch-up wait; simulated
	// windows decode in microseconds, so 2ms of grace covers deep
	// backlogs while keeping a wedged pool detectable quickly.
	DefaultAsyncGateWait = 2 * time.Millisecond
	// DefaultAsyncQueue is the pending-window backpressure threshold.
	DefaultAsyncQueue = 8
	// DefaultAsyncWorkers sizes pools created on demand.
	DefaultAsyncWorkers = 2
)

// asyncGatePoll is the gate's and the producer's timed wait step, the
// fallback after the yield spins. Sleeps this short round up to the
// scheduler's timer granularity (a millisecond on some kernels), which
// is why the spin phase comes first: a pipeline that is actively
// draining is caught within microseconds, and the sleep only paces
// waits that are going to be long anyway.
const asyncGatePoll = 20 * time.Microsecond

// asyncGateSpins is the number of runtime.Gosched yields the gate (and
// the backpressure stall) burns before falling back to timed sleeps.
const asyncGateSpins = 128

// asyncStallSpins bounds the producer's backpressure stall before it
// sheds to draining the oldest window itself.
const asyncStallSpins = 25

// asyncChunk is one captured trace span: the region-full capture copies
// [start, start+len(buf)) out of the ToPA while it is still resident.
type asyncChunk struct {
	start uint64
	buf   []byte
}

// asyncState is a guard's attachment to an AsyncPool.
//
// Goroutine roles: the producer (the traced process's goroutine) runs
// the capture hook and the gate; workers and the watchdog drain. cursor
// is only touched by the producer. Everything under mu is shared.
type asyncState struct {
	pool *AsyncPool

	// cursor is the stream offset up to which capture has copied bytes
	// out; producer-goroutine-confined.
	cursor uint64

	mu      sync.Mutex
	pending []asyncChunk
	free    [][]byte // recycled chunk buffers
	// oldestAt timestamps the head of pending (watchdog staleness).
	oldestAt time.Time
	// Pipeline counters, folded into Stats at each gate (and at
	// shutdown) under the guard's mutex.
	windows uint64
	maxLag  uint64
	stalls  uint64
	sheds   uint64
	crashes uint64
}

// EnableAsync attaches the guard to an asynchronous checking pool: ToPA
// region-full events start capturing filled windows for the pool's
// workers, and Check becomes "wait until checked-lag <= MaxLagWindows or
// deadline, then verdict". Call it after the guard's tracer is wired and
// before the workload runs; requires Policy.Async semantics but does not
// consult the flag (KernelModule does).
func (g *Guard) EnableAsync(p *AsyncPool) {
	g.mu.Lock()
	g.async = &asyncState{pool: p, cursor: g.Tracer.Out.TotalWritten()}
	g.mu.Unlock()
	g.Tracer.Out.OnRegionFull = g.asyncOnRegionFull
	p.register(g)
}

// AsyncEnabled reports whether the guard is attached to an AsyncPool.
func (g *Guard) AsyncEnabled() bool { return g.async != nil }

// AsyncPending returns the number of captured windows not yet drained.
func (g *Guard) AsyncPending() int {
	a := g.async
	if a == nil {
		return 0
	}
	return a.pendingLen()
}

func (a *asyncState) pendingLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// grabBuf pops a recycled chunk buffer (or nil: append allocates the
// first few rounds, then the freelist carries the steady state).
func (a *asyncState) grabBuf() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.free)
	if n == 0 {
		return nil
	}
	buf := a.free[n-1]
	a.free = a.free[:n-1]
	return buf
}

// asyncOnRegionFull is the capture point, invoked by the ToPA at every
// region boundary on the producer's goroutine with no buffer lock held.
// It copies the span since the last capture out of the ToPA (the span is
// at most one region deep, so it is always still resident), enqueues it,
// and wakes the pool.
//
//fg:hotpath runs at every filled trace region
func (g *Guard) asyncOnRegionFull(ev ipt.RegionFull) {
	a := g.async
	buf := a.grabBuf()
	if buf == nil {
		buf = g.asyncNewBuf()
	}
	nb, ok := g.Tracer.Out.AppendSince(buf[:0], a.cursor)
	if !ok {
		// The cursor itself was outrun — only reachable if capture was
		// re-aligned across a reset. Skip this span; the gate's
		// AppendSince/loss classification covers it.
		a.recycle(buf)
		a.cursor = g.Tracer.Out.TotalWritten()
		return
	}
	if len(nb) == 0 {
		a.recycle(nb)
		return
	}
	full := a.enqueue(asyncChunk{start: a.cursor, buf: nb})
	a.cursor += uint64(len(nb))
	g.asyncNotify(full)
}

// asyncNewBuf is the cold allocation path for a first-use chunk buffer,
// kept out of the annotated capture hook. Captures span at most one
// region, so the default region size is the steady-state capacity.
//
//fg:cold first-use buffer allocation, amortized to zero by the recycle pool
func (g *Guard) asyncNewBuf() []byte {
	return make([]byte, 0, DefaultToPARegion)
}

// enqueue appends a captured chunk and reports whether the queue is over
// the backpressure threshold.
//
//fg:hotpath
func (a *asyncState) enqueue(c asyncChunk) bool {
	a.mu.Lock()
	if len(a.pending) == 0 {
		a.oldestAt = time.Now()
	}
	a.pending = append(a.pending, c)
	a.windows++
	if n := uint64(len(a.pending)); n > a.maxLag {
		a.maxLag = n
	}
	full := len(a.pending) > a.queueLimit()
	a.mu.Unlock()
	return full
}

// queueLimit returns the backpressure threshold. Caller holds a.mu (the
// pool pointer is immutable after EnableAsync).
func (a *asyncState) queueLimit() int {
	if a.pool.queue > 0 {
		return a.pool.queue
	}
	return DefaultAsyncQueue
}

func (a *asyncState) recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.free) < 64 {
		a.free = append(a.free, buf[:0])
	}
	a.mu.Unlock()
}

// asyncNotify wakes the pool and, when the queue crossed the
// backpressure threshold, stalls the producer: the tracer waits a
// bounded interval for the workers and then drains the oldest window on
// its own goroutine. Trace is never dropped — backpressure converts an
// overloaded pipeline into producer stalls, preserving the unmarked-loss
// classification (a wrap loss still only happens when the stream really
// outruns the buffer, exactly as in synchronous mode).
func (g *Guard) asyncNotify(full bool) {
	a := g.async
	select {
	case a.pool.wake <- g:
	default: // a wake is already queued; the backlog will be seen
	}
	if g.inCheck {
		// Re-entrant capture from the gate's own flush: this goroutine
		// holds g.mu, so neither yielding to workers (they need g.mu)
		// nor draining inline (recursive lock) can make progress. The
		// gate drops the whole queue right after window() anyway.
		return
	}
	// The PMI that signals a filled region is a scheduling point: Griffin's
	// buffer-full interrupt wakes the worker kthread, which on a saturated
	// (or single-core) host preempts the traced process right here. One
	// yield models that hand-off — without it the producer can run from
	// capture straight into the endpoint and the gate inherits the whole
	// backlog onto the critical path it was built to keep clear.
	runtime.Gosched()
	if !full {
		return
	}
	a.mu.Lock()
	a.stalls++
	a.mu.Unlock()
	limit := a.queueLimit()
	for i := 0; i < asyncGateSpins+asyncStallSpins; i++ {
		if i < asyncGateSpins {
			runtime.Gosched() // cede the producer's core to the workers
		} else {
			time.Sleep(asyncGatePoll)
		}
		if a.pendingLen() <= limit {
			return
		}
	}
	// The pool cannot keep up: shed to synchronous draining on the
	// producer. This is the stall-not-drop guarantee's backstop — it
	// also guarantees progress when every worker is wedged or crashed.
	for a.pendingLen() > limit {
		if !g.AsyncDrainOne() {
			return
		}
	}
}

// gateWait blocks (lock-free, bounded) until the captured backlog is
// within Policy.MaxLagWindows or the deadline expires. On expiry it
// counts a shed: the pipeline has fallen behind and the gate will do the
// backlog synchronously rather than deadlock waiting.
func (a *asyncState) gateWait(g *Guard) {
	bound := g.Policy.MaxLagWindows
	if bound <= 0 {
		bound = DefaultMaxLagWindows
	}
	if a.pendingLen() <= bound {
		return
	}
	deadline := g.Policy.AsyncGateWait
	if deadline <= 0 {
		deadline = DefaultAsyncGateWait
	}
	start := time.Now()
	for spins := 0; ; spins++ {
		select {
		case a.pool.wake <- g:
		default:
		}
		if spins < asyncGateSpins {
			runtime.Gosched()
		} else {
			time.Sleep(asyncGatePoll)
		}
		if a.pendingLen() <= bound {
			return
		}
		if time.Since(start) >= deadline {
			a.mu.Lock()
			a.sheds++
			a.mu.Unlock()
			return
		}
	}
}

// AsyncDrainOne feeds the oldest captured window into the guard's
// incremental decoder, exactly as the synchronous path would have fed
// it. It returns false when nothing was pending. Safe to call from any
// goroutine (workers, watchdog, producer backpressure).
func (g *Guard) AsyncDrainOne() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.asyncDrainOneLocked()
}

//fg:hotpath the worker side of every captured window
func (g *Guard) asyncDrainOneLocked() bool {
	a := g.async
	a.mu.Lock()
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return false
	}
	c := a.pending[0]
	n := copy(a.pending, a.pending[1:])
	a.pending = a.pending[:n]
	if n > 0 {
		a.oldestAt = time.Now()
	}
	a.mu.Unlock()

	w := &g.win
	if w.src != g.Tracer.Out || w.asyncErr != nil || c.start != w.total {
		// Stale capture: the window was reset, resynchronized, or
		// poisoned since this span was captured (or no check has
		// initialized the window yet). The gate's own snapshot covers
		// the stream; feeding this chunk would corrupt decoder state.
		a.recycle(c.buf)
		return true
	}
	old := len(w.buf)
	w.buf = append(w.buf, c.buf...)
	w.total += uint64(len(c.buf))
	a.recycle(c.buf)
	if ferr := w.dec.Feed(w.buf[old:]); ferr != nil {
		// Grammar corruption found ahead of the endpoint: remember it
		// for the gate, which replays the synchronous malformed path.
		w.asyncErr = ferr
		return true
	}
	g.asyncTrimLocked()
	return true
}

// asyncTrimLocked forgets history the ToPA no longer holds, keeping the
// between-gates window footprint bounded by the buffer capacity. It is
// the same rule window() applies at every gate, applied earlier; the
// gate's own trim (with an equal-or-higher cutoff) subsumes it, so decode
// state stays identical to the synchronous schedule.
//
//fg:hotpath
func (g *Guard) asyncTrimLocked() {
	w := &g.win
	topa := g.Tracer.Out
	if lo := topa.TotalWritten() - uint64(topa.Held()); lo > w.base && lo <= w.total {
		n := copy(w.buf, w.buf[lo-w.base:])
		w.buf = w.buf[:n]
		w.base = lo
		w.dec.DropBefore(int(lo))
	}
}

// asyncBeforeCheckLocked runs at gate entry (guard mutex held): it folds
// the pipeline counters into Stats and discards the still-pending
// captured chunks — their bytes are necessarily still resident in the
// ToPA (otherwise the checkedTotal loss rule resyncs), so window()'s
// incremental AppendSince covers them with identical content and the
// copies are redundant.
func (g *Guard) asyncBeforeCheckLocked() {
	a := g.async
	a.mu.Lock()
	g.Stats.AsyncWindows += a.windows
	a.windows = 0
	if a.maxLag > g.Stats.AsyncMaxLag {
		g.Stats.AsyncMaxLag = a.maxLag
	}
	g.Stats.BackpressureStalls += a.stalls
	a.stalls = 0
	g.Stats.WatchdogSheds += a.sheds
	a.sheds = 0
	g.Stats.WorkerCrashes += a.crashes
	a.crashes = 0
	for _, c := range a.pending {
		if len(a.free) < 64 {
			a.free = append(a.free, c.buf[:0])
		}
	}
	a.pending = a.pending[:0]
	a.mu.Unlock()
}

// asyncAfterCheckLocked re-aligns the capture cursor with the verdict:
// everything up to w.total has been checked, and captures made while the
// check itself flushed trace are superseded by it.
func (g *Guard) asyncAfterCheckLocked() {
	a := g.async
	a.mu.Lock()
	for _, c := range a.pending {
		if len(a.free) < 64 {
			a.free = append(a.free, c.buf[:0])
		}
	}
	a.pending = a.pending[:0]
	a.mu.Unlock()
	a.cursor = g.win.total
}

// AsyncFlushStats folds any pipeline counters accumulated since the last
// gate into Stats (end-of-run accounting; KernelModule.Shutdown calls
// it for every guard).
func (g *Guard) AsyncFlushStats() {
	if g.async == nil {
		return
	}
	g.mu.Lock()
	g.asyncBeforeCheckLocked()
	g.mu.Unlock()
}

// asyncMarkPanicked poisons the window after a contained worker panic
// that may have died mid-feed: the decoder state is suspect, so the next
// gate resolves the window under Policy.OnDegraded (FailClosed kills,
// SlowPathRetry recovers via a fresh full-precision decode, FailOpen
// proceeds unverified) instead of trusting it.
func (g *Guard) asyncMarkPanicked(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.async
	a.mu.Lock()
	a.crashes++
	a.mu.Unlock()
	if g.win.asyncErr == nil {
		g.win.asyncErr = err
	}
}

// asyncNoteCrash counts an injected (pre-pickup) worker crash: the
// worker died before touching any guard state, so the captured chunk
// stays queued and is re-drained by a sibling, the watchdog, or the
// gate — containment with zero verdict effect.
func (g *Guard) asyncNoteCrash() {
	a := g.async
	a.mu.Lock()
	a.crashes++
	a.mu.Unlock()
}
