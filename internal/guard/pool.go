package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// defaultPoolBackoff is the base sleep between admission retries under
// SlowPathRetry when RetryBackoff is unset; each attempt doubles it.
const defaultPoolBackoff = 100 * time.Microsecond

// CheckPool bounds how many flow checks run simultaneously across a set
// of protected processes — the reproduction of §6's offloading
// suggestion ("the checking overhead could be removed from the
// protected execution" by dedicating cores to checking). Each process
// still blocks on its own endpoint check (the verdict gates the
// syscall), but checks of *different* processes proceed concurrently up
// to the configured number of checker cores.
//
// Do runs on the calling goroutine after acquiring a checker slot, so
// all guard-internal state stays confined to the process's goroutine;
// the pool only supplies admission control plus aggregate accounting.
//
// The zero-value configuration (no Deadline, no QueueLimit) blocks
// until a slot frees, exactly the original behavior. With a Deadline
// and/or QueueLimit set, a check that cannot be admitted is never
// dropped silently: it is retried (SlowPathRetry, with exponential
// backoff) and ultimately shed under the guard's own Policy.OnDegraded,
// producing a counted fail-open or fail-closed verdict.
type CheckPool struct {
	slots chan struct{}

	// Deadline bounds how long one admission attempt may wait for a
	// checker slot; zero waits indefinitely.
	Deadline time.Duration
	// QueueLimit bounds how many checks may be queued waiting for a
	// slot; zero is unlimited. A check arriving beyond the limit gets
	// one non-blocking admission try, then is retried or shed.
	QueueLimit int
	// RetryBackoff is the base sleep between admission retries under
	// SlowPathRetry, doubling per attempt (defaultPoolBackoff if zero).
	RetryBackoff time.Duration
	// Stall, if non-nil, is consulted after every slot acquisition and
	// the returned duration slept while holding the slot — the
	// fault-injection hook modeling a wedged checker core.
	Stall func() time.Duration

	waiters atomic.Int64

	mu        sync.Mutex
	checks    uint64
	shed      uint64
	fairSheds uint64
	retried   uint64
	waitNanos int64
	busyNanos int64
}

// NewCheckPool returns a pool admitting up to workers concurrent checks.
// workers < 1 is treated as 1 (fully serialized checking).
func NewCheckPool(workers int) *CheckPool {
	if workers < 1 {
		workers = 1
	}
	return &CheckPool{slots: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *CheckPool) Workers() int { return cap(p.slots) }

// acquire tries to obtain a checker slot within one Deadline window,
// honoring the queue bound. It reports whether the slot was obtained.
func (p *CheckPool) acquire() bool {
	if p.QueueLimit > 0 && p.waiters.Load() >= int64(p.QueueLimit) {
		// Queue full: one non-blocking try, then give up this attempt.
		select {
		case p.slots <- struct{}{}:
			return true
		default:
			return false
		}
	}
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	if p.Deadline <= 0 {
		p.slots <- struct{}{}
		return true
	}
	timer := time.NewTimer(p.Deadline)
	defer timer.Stop()
	select {
	case p.slots <- struct{}{}:
		return true
	case <-timer.C:
		return false
	}
}

// Do runs g.Check() under a checker slot and returns its result. When
// the pool is saturated past the deadline/queue bounds, the check is
// governed by g.Policy.OnDegraded: SlowPathRetry re-queues with backoff
// up to the policy's retry budget, and an unadmitted check is shed with
// an explicit fail-open or fail-closed verdict, tallied in both the
// pool's and the guard's statistics.
func (p *CheckPool) Do(g *Guard) Result {
	t0 := time.Now()
	acquired := p.acquire()
	if !acquired && g.Policy.OnDegraded == SlowPathRetry {
		max := g.Policy.RetryMax
		if max <= 0 {
			max = DefaultRetryMax
		}
		backoff := p.RetryBackoff
		if backoff <= 0 {
			backoff = defaultPoolBackoff
		}
		for attempt := 0; attempt < max && !acquired; attempt++ {
			p.mu.Lock()
			p.retried++
			p.mu.Unlock()
			time.Sleep(backoff << uint(attempt))
			acquired = p.acquire()
		}
	}
	if !acquired {
		res := p.shedResult(g)
		g.noteShed(&res)
		p.mu.Lock()
		p.shed++
		p.waitNanos += time.Since(t0).Nanoseconds()
		p.mu.Unlock()
		return res
	}
	return p.run(g, t0)
}

// TryDo runs g.Check() only if a checker slot is free right now; it
// never queues. The FleetPool gives over-fair-share tenants exactly
// this best-effort admission: spare capacity is theirs, a queue slot is
// not. The boolean reports whether the check ran — a false return has
// touched no accounting, so the caller decides how to shed.
func (p *CheckPool) TryDo(g *Guard) (Result, bool) {
	t0 := time.Now()
	select {
	case p.slots <- struct{}{}:
	default:
		return Result{}, false
	}
	return p.run(g, t0), true
}

// ShedFair sheds a check that per-tenant fairness refused to admit: the
// same policy-governed verdict and no-silent-drop accounting as an
// overload shed (it counts in Shed, preserving checks == admitted +
// shed), plus the fairness counters on both ledgers.
func (p *CheckPool) ShedFair(g *Guard) Result {
	res := p.shedResult(g)
	res.Reason = "per-tenant fair share exceeded: check shed"
	g.noteFairnessShed(&res)
	p.mu.Lock()
	p.shed++
	p.fairSheds++
	p.mu.Unlock()
	return res
}

// run executes an admitted check while holding a slot. t0 is the
// admission start time (queue wait is t0 → now).
func (p *CheckPool) run(g *Guard, t0 time.Time) Result {
	t1 := time.Now()
	if p.Stall != nil {
		if d := p.Stall(); d > 0 {
			time.Sleep(d) // a wedged checker core holds its slot
		}
	}
	res := g.Check()
	busy := time.Since(t1)
	<-p.slots
	p.mu.Lock()
	p.checks++
	p.waitNanos += t1.Sub(t0).Nanoseconds()
	p.busyNanos += busy.Nanoseconds()
	p.mu.Unlock()
	return res
}

// shedResult synthesizes the policy-governed verdict for a check the
// pool could not admit. FailOpen lets the endpoint through unverified;
// everything else (FailClosed, and SlowPathRetry with its admission
// retries exhausted) refuses to vouch and fails closed.
func (p *CheckPool) shedResult(g *Guard) Result {
	res := Result{Degraded: true, OtherCycles: CyclesPerInterception}
	if g.Policy.OnDegraded == FailOpen {
		res.Verdict = VerdictClean
		res.Reason = "checker pool overloaded: check shed (fail open)"
		return res
	}
	res.Verdict = VerdictViolation
	res.Reason = "checker pool overloaded: check shed (fail closed)"
	return res
}

// PoolStats is the pool's aggregate accounting.
type PoolStats struct {
	// Checks is the number of checks admitted.
	Checks uint64
	// Shed is the number of checks the pool could not admit; each one
	// produced a policy-governed degraded verdict, never a silent drop.
	// Fairness sheds are included (Shed counts every unadmitted check,
	// whatever the reason, so Checks + Shed is the total offered load).
	Shed uint64
	// FairnessSheds is the subset of Shed forced by per-tenant fairness
	// rather than raw overload.
	FairnessSheds uint64
	// Retried is the number of admission retries under SlowPathRetry.
	Retried uint64
	// Wait is the total time checks spent queued for a slot.
	Wait time.Duration
	// Busy is the total wall time spent inside admitted checks; with N
	// workers and saturated demand it accumulates ~N× faster than the
	// elapsed time.
	Busy time.Duration
}

// Snapshot returns the accumulated pool statistics.
func (p *CheckPool) Snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Checks:        p.checks,
		Shed:          p.shed,
		FairnessSheds: p.fairSheds,
		Retried:       p.retried,
		Wait:          time.Duration(p.waitNanos),
		Busy:          time.Duration(p.busyNanos),
	}
}

// Merge adds o into s (fleet aggregation across shards).
func (s *PoolStats) Merge(o PoolStats) {
	s.Checks += o.Checks
	s.Shed += o.Shed
	s.FairnessSheds += o.FairnessSheds
	s.Retried += o.Retried
	s.Wait += o.Wait
	s.Busy += o.Busy
}
