package guard

import (
	"sync"
	"time"
)

// CheckPool bounds how many flow checks run simultaneously across a set
// of protected processes — the reproduction of §6's offloading
// suggestion ("the checking overhead could be removed from the
// protected execution" by dedicating cores to checking). Each process
// still blocks on its own endpoint check (the verdict gates the
// syscall), but checks of *different* processes proceed concurrently up
// to the configured number of checker cores.
//
// Do runs on the calling goroutine after acquiring a checker slot, so
// all guard-internal state stays confined to the process's goroutine;
// the pool only supplies admission control plus aggregate accounting.
type CheckPool struct {
	slots chan struct{}

	mu        sync.Mutex
	checks    uint64
	waitNanos int64
	busyNanos int64
}

// NewCheckPool returns a pool admitting up to workers concurrent checks.
// workers < 1 is treated as 1 (fully serialized checking).
func NewCheckPool(workers int) *CheckPool {
	if workers < 1 {
		workers = 1
	}
	return &CheckPool{slots: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *CheckPool) Workers() int { return cap(p.slots) }

// Do runs g.Check() under a checker slot and returns its result.
func (p *CheckPool) Do(g *Guard) Result {
	t0 := time.Now()
	p.slots <- struct{}{}
	t1 := time.Now()
	res := g.Check()
	busy := time.Since(t1)
	<-p.slots
	p.mu.Lock()
	p.checks++
	p.waitNanos += t1.Sub(t0).Nanoseconds()
	p.busyNanos += busy.Nanoseconds()
	p.mu.Unlock()
	return res
}

// PoolStats is the pool's aggregate accounting.
type PoolStats struct {
	// Checks is the number of checks admitted.
	Checks uint64
	// Wait is the total time checks spent queued for a slot.
	Wait time.Duration
	// Busy is the total wall time spent inside admitted checks; with N
	// workers and saturated demand it accumulates ~N× faster than the
	// elapsed time.
	Busy time.Duration
}

// Snapshot returns the accumulated pool statistics.
func (p *CheckPool) Snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Checks: p.checks,
		Wait:   time.Duration(p.waitNanos),
		Busy:   time.Duration(p.busyNanos),
	}
}
