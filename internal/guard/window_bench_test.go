package guard

// White-box benchmark of the amortized window collection: the
// incremental path decodes only the bytes appended since the previous
// check, while the full-rescan path (InvalidateWindow before every
// check) re-collects the window from scratch as the pre-amortization
// code did. `go test -bench BenchmarkIncrementalWindow -benchmem`
// shows both the time and the steady-state allocation gap.

import (
	"testing"

	"flowguard/internal/trace/ipt"
)

func BenchmarkIncrementalWindow(b *testing.B) {
	pol := DefaultPolicy()
	pol.PktCount = 8

	run := func(b *testing.B, invalidate bool) {
		f := newWindowFixture(b, pol)
		// Wrap-around two-region ToPA, as deployed (§5.1).
		f.tr.Out = ipt.NewToPA(32<<10, 32<<10)
		emit := func(n int) {
			for i := 0; i < n; i++ {
				addr := f.exec
				if i%3 == 1 {
					addr = f.lib
				}
				f.emitTIP(addr)
			}
		}
		emit(20000) // fill (and wrap) the buffer before measuring
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			emit(16) // branches arriving between endpoint checks
			if invalidate {
				f.g.InvalidateWindow()
			}
			if _, _, _, _, err := f.g.window(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, false) })
	b.Run("full-rescan", func(b *testing.B) { run(b, true) })
}
