package guard

// Syscall-blocked-time benchmark for the asynchronous checking pipeline
// (DESIGN.md §9), tier-1 in fgperf's regression gate. Each iteration
// emits the trace backlog that accumulates between endpoints OFF the
// clock, then times only Check() — the work holding the intercepted
// syscall. The sync variant decodes the whole backlog on that critical
// path; w1/w4 attach a worker pool that drains region-full captures
// while the backlog is produced, so the gate waits at most to the
// staleness bound and decodes only the residual tail. The w1→w4 axis
// shows how the gate's residual shrinks with checking cores.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// asyncGateBench caches the offline phase: a synthetic two-node O-CFG
// over the window fixture's branch sites (the module layout is
// deterministic, so one trained ITC graph serves every sub-benchmark's
// fixture) with the emission pattern's three edges trained to high
// credit.
var asyncGateBench struct {
	once      sync.Once
	err       error
	ocfg      *cfg.Graph
	ig        *itc.Graph
	exec, lib uint64
}

// emitGatePattern pushes n synthetic indirect branches alternating the
// executable and library sites — the same mix the training pass
// observed, so steady-state checks stay on the fast loop.
func emitGatePattern(f *windowFixture, n int) {
	for i := 0; i < n; i++ {
		addr := f.exec
		if i%3 == 1 {
			addr = f.lib
		}
		f.emitTIP(addr)
	}
	f.tr.Flush()
}

func asyncGateSetup(b *testing.B) {
	b.Helper()
	asyncGateBench.once.Do(func() {
		f := newWindowFixture(b, DefaultPolicy())
		ocfg := cfg.Synthetic([]*cfg.Block{
			{Start: f.exec, End: f.exec + 8, Kind: cfg.TermIndJmp, TermAddr: f.exec, IndTargets: []uint64{f.exec, f.lib}},
			{Start: f.lib, End: f.lib + 8, Kind: cfg.TermIndJmp, TermAddr: f.lib, IndTargets: []uint64{f.exec, f.lib}},
		})
		ig := itc.FromCFG(ocfg)
		emitGatePattern(f, 4000)
		evs, err := ipt.DecodeFast(f.tr.Out.Snapshot())
		if err != nil {
			asyncGateBench.err = err
			return
		}
		if !ig.ObserveWindow(ipt.ExtractTIPs(evs)) {
			b.Fatal("training observed an edge outside the synthetic ITC-CFG")
		}
		ig.RebuildCache()
		asyncGateBench.ocfg, asyncGateBench.ig = ocfg, ig
		asyncGateBench.exec, asyncGateBench.lib = f.exec, f.lib
	})
	if asyncGateBench.err != nil {
		b.Fatal(asyncGateBench.err)
	}
}

func BenchmarkAsyncSyscallGate(b *testing.B) {
	asyncGateSetup(b)
	run := func(b *testing.B, workers int) {
		pol := DefaultPolicy()
		pol.PktCount = 8
		pol.RequireModuleStride = false
		if workers > 0 {
			pol.Async = true
			pol.MaxLagWindows = 1
			// The deadline only bounds a wedged pool; keep it out of the
			// measurement by making it generous.
			pol.AsyncGateWait = 50 * time.Millisecond
		}
		f := newWindowFixture(b, pol)
		if f.exec != asyncGateBench.exec || f.lib != asyncGateBench.lib {
			b.Fatal("fixture layout not deterministic; trained graph does not apply")
		}
		f.g.OCFG, f.g.ITC = asyncGateBench.ocfg, asyncGateBench.ig
		// Eight 2 KiB regions: the deployed two-region capacity (16 KiB,
		// kernelmodule §5.1) but with captures firing at 2 KiB
		// granularity, so one between-endpoints backlog spans several
		// pipeline windows.
		f.tr.Out = ipt.NewToPA(2<<10, 2<<10, 2<<10, 2<<10, 2<<10, 2<<10, 2<<10, 2<<10)
		f.tr.PSBPeriod = 1024
		if workers > 0 {
			ap := NewAsyncPool(workers, 0)
			defer ap.Close()
			f.g.EnableAsync(ap)
		}
		emitGatePattern(f, 4000) // warm the decoder's incremental window
		if res := f.g.Check(); res.Verdict != VerdictClean {
			b.Fatalf("priming check: %+v", res)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			emitGatePattern(f, 1500) // between-endpoints backlog, off the clock
			if workers > 0 {
				// The inter-endpoint interval: a real workload executes
				// between syscalls, which is the wall-clock the pipeline
				// overlaps its decoding with. Bounded so a wedged pool
				// fails loudly instead of hanging the benchmark.
				for settle := time.Now(); f.g.AsyncPending() > pol.MaxLagWindows; {
					if time.Since(settle) > time.Second {
						b.Fatal("pool never caught up with the backlog")
					}
					runtime.Gosched()
				}
			}
			b.StartTimer()
			if res := f.g.Check(); res.Verdict != VerdictClean {
				b.Fatalf("steady-state check: %+v", res)
			}
		}
		b.StopTimer()
		if workers > 0 && f.g.Stats.AsyncWindows == 0 {
			b.Fatal("async run captured no windows; the pipeline was idle")
		}
		if f.g.Stats.Resyncs != 0 {
			b.Fatalf("backlog wrapped the buffer %d times; the benchmark is no longer incremental", f.g.Stats.Resyncs)
		}
	}
	// Sub-benchmark names carry no trailing -<digits>: that suffix is
	// indistinguishable from the -GOMAXPROCS one fgperf strips.
	b.Run("sync", func(b *testing.B) { run(b, 0) })
	b.Run("w1", func(b *testing.B) { run(b, 1) })
	b.Run("w4", func(b *testing.B) { run(b, 4) })
}
