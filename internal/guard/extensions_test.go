package guard_test

import (
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
)

// TestEndpointPruningEscapesDefaultPolicy validates the threat §7.1.2
// acknowledges: an attack that avoids every guarded syscall completes
// under the default endpoint set...
func TestEndpointPruningEscapesDefaultPolicy(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildEndpointPruning(as)
	if err != nil {
		t.Fatal(err)
	}
	st, km, _, _ := a.protectAndRun(t, payload, guard.DefaultPolicy())
	if st.Killed {
		t.Fatalf("endpoint-pruning attack killed under default policy: %v (it touches no endpoint)", km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("unexpected reports: %v", km.Reports)
	}
}

// ...and TestEndpointPruningCaughtByPMI validates the paper's worst-case
// fallback: with buffer-full PMIs as endpoints, the same attack dies.
func TestEndpointPruningCaughtByPMI(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildEndpointPruning(as)
	if err != nil {
		t.Fatal(err)
	}
	pol := guard.DefaultPolicy()
	pol.CheckOnPMI = true
	st, km, _, _ := a.protectAndRun(t, payload, pol)
	if !st.Killed || st.Signal != kernelsim.SIGKILL {
		t.Fatalf("PMI policy missed the pruning attack: %v", st)
	}
	if len(km.Reports) == 0 || !km.Reports[0].DetectedAtPMI() {
		t.Fatalf("reports = %v, want a PMI-labeled detection", km.Reports)
	}
	t.Logf("report: %v", km.Reports[0])
}

// TestPMIPolicyBenignClean: PMI checking must not flag trained benign
// traffic even when the buffer wraps many times.
func TestPMIPolicyBenignClean(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), a.app.MakeInput(20, 5))
	pol := guard.DefaultPolicy()
	pol.CheckOnPMI = true
	st, km, g, _ := a.protectAndRun(t, a.app.MakeInput(20, 5), pol)
	if !st.Exited {
		t.Fatalf("benign PMI run: %v; %v", st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives under PMI policy: %v", km.Reports)
	}
	if g.Stats.Checks == 0 {
		t.Fatal("no checks ran")
	}
}

// TestMultiLevelCredits: raising the credit bar sends rare edges to the
// slow path without ever killing benign traffic.
func TestMultiLevelCredits(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	// Train several times so hot edges accumulate counts.
	a.train(t, benignTraffic(), benignTraffic(), benignTraffic())

	polLow := guard.DefaultPolicy()
	stL, kmL, gL, _ := a.protectAndRun(t, benignTraffic(), polLow)
	if !stL.Exited || len(kmL.Reports) != 0 {
		t.Fatalf("binary labeling run: %v %v", stL, kmL.Reports)
	}

	polHigh := guard.DefaultPolicy()
	polHigh.CredMinCount = 1000 // nothing reaches this
	stH, kmH, gH, _ := a.protectAndRun(t, benignTraffic(), polHigh)
	if !stH.Exited {
		t.Fatalf("high-bar run killed: %v %v", stH, kmH.Reports)
	}
	if len(kmH.Reports) != 0 {
		t.Fatalf("false positives with CredMinCount: %v", kmH.Reports)
	}
	if gH.Stats.SlowChecks <= gL.Stats.SlowChecks {
		t.Errorf("CredMinCount=1000 slow checks %d <= binary labeling %d",
			gH.Stats.SlowChecks, gL.Stats.SlowChecks)
	}

	// A modest bar (2 observations after 3 training runs) behaves like
	// binary labeling for hot paths.
	polMid := guard.DefaultPolicy()
	polMid.CredMinCount = 2
	stM, kmM, _, _ := a.protectAndRun(t, benignTraffic(), polMid)
	if !stM.Exited || len(kmM.Reports) != 0 {
		t.Fatalf("mid-bar run: %v %v", stM, kmM.Reports)
	}
}

// TestPathSensitiveMode: the future-work extension still accepts benign
// traffic (via training + slow-path approvals) and still kills the ROP.
func TestPathSensitiveMode(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic(), a.app.MakeInput(15, 9))
	pol := guard.DefaultPolicy()
	pol.PathSensitive = true

	st, km, g, _ := a.protectAndRun(t, benignTraffic(), pol)
	if !st.Exited {
		t.Fatalf("benign path-sensitive run: %v %v", st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives: %v", km.Reports)
	}

	// Compared to the plain mode on unseen traffic, path matching must
	// escalate at least as often (the cost the paper predicts).
	unseen := a.app.MakeInput(15, 77)
	stPlain, _, gPlain, _ := a.protectAndRun(t, unseen, guard.DefaultPolicy())
	stPath, kmPath, gPath, _ := a.protectAndRun(t, unseen, pol)
	if !stPlain.Exited || !stPath.Exited {
		t.Fatalf("unseen traffic runs: %v / %v (%v)", stPlain, stPath, kmPath.Reports)
	}
	if gPath.Stats.SlowChecks < gPlain.Stats.SlowChecks {
		t.Errorf("path-sensitive slow checks %d < plain %d", gPath.Stats.SlowChecks, gPlain.Stats.SlowChecks)
	}
	_ = g

	// And the ROP still dies.
	as, _ := a.app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	stAtk, kmAtk, _, _ := a.protectAndRun(t, payload, pol)
	if !stAtk.Killed || len(kmAtk.Reports) == 0 {
		t.Fatalf("path-sensitive mode missed the ROP: %v", stAtk)
	}
}

// TestTrainingObservesPaths: the window trainer records edge pairs.
func TestTrainingObservesPaths(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	if a.ig.NumPaths() != 0 {
		t.Fatal("paths trained before training")
	}
	a.train(t, benignTraffic())
	if a.ig.NumPaths() == 0 {
		t.Fatal("training recorded no edge pairs")
	}
}
