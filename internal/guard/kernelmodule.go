package guard

import (
	"fmt"
	"sync"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// ToPA configuration of §5.1/§7.2.2: one table with two regions, ~16 KiB
// per protected core.
const (
	DefaultToPARegion  = 8 << 10
	DefaultToPARegions = 2
)

// pmiPseudoSyscall labels PMI-triggered detections in violation reports
// (they have no syscall context).
const pmiPseudoSyscall = ^uint64(0)

// ViolationReport is what the kernel module reports to administrators on
// a detected control-flow violation (§5.2).
type ViolationReport struct {
	PID     int
	Process string
	Syscall uint64
	Reason  string
}

func (r ViolationReport) String() string {
	at := kernelsim.SyscallName(r.Syscall)
	if r.Syscall == pmiPseudoSyscall {
		at = "PMI (buffer full)"
	}
	return fmt.Sprintf("CFI violation: pid=%d (%s) at %s: %s",
		r.PID, r.Process, at, r.Reason)
}

// DetectedAtPMI reports whether the violation was raised by the
// buffer-full fallback rather than a syscall endpoint.
func (r ViolationReport) DetectedAtPMI() bool { return r.Syscall == pmiPseudoSyscall }

// KernelModule is the §5 kernel component: it configures per-core IPT
// tracing for protected processes (CR3-filtered), intercepts the
// security-sensitive syscalls by replacing their syscall-table entries,
// triggers the hybrid flow check, and SIGKILLs violators.
//
// With a CheckPool attached (UsePool), endpoint checks of different
// processes run concurrently under the pool's admission bound; the
// module's own bookkeeping is mutex-protected for that case.
type KernelModule struct {
	K *kernelsim.Kernel

	// mu protects guards, Reports and installed once processes run
	// concurrently.
	mu sync.Mutex
	// guards maps protected CR3 values to their checking engines.
	guards map[uint64]*Guard
	// Reports accumulates detected violations. Read it only after the
	// run completes (or via ReportsSnapshot).
	Reports []ViolationReport

	// pool, when set, bounds concurrent endpoint checks (§6 offloading).
	pool *CheckPool

	// apool, when set (UseAsync, or created on demand for Policy.Async),
	// runs the asynchronous checking pipeline for protected processes.
	apool *AsyncPool
	// ownsAPool marks a pool the module created itself and must close.
	ownsAPool bool

	// mc, when set (EnableMulticore), holds the preemptive-world state:
	// shared per-core tracers and the demux routing their streams back
	// into per-thread windows.
	mc *multicore

	installed map[uint64]bool
}

// InstallModule loads the kernel module into the simulated kernel. It
// hooks fork dispatch (a protected process's children are automatically
// protected by inheritance before they ever run) and async-flow events
// (signal delivery and sigreturn surface in the protected process's
// trace as FUP+TIP async edges).
func InstallModule(k *kernelsim.Kernel) *KernelModule {
	m := &KernelModule{
		K:         k,
		guards:    make(map[uint64]*Guard),
		installed: make(map[uint64]bool),
	}
	k.OnFork = m.onFork
	k.OnAsyncFlow = m.onAsyncFlow
	return m
}

// UsePool routes all flow checks through p. Call before the workload
// runs.
func (m *KernelModule) UsePool(p *CheckPool) { m.pool = p }

// UseAsync attaches an asynchronous checking pool: processes protected
// with Policy.Async get their region-full captures drained by p's
// workers. Call before Protect. Without it, Protect creates (and
// Shutdown closes) a module-owned pool on first async protection.
func (m *KernelModule) UseAsync(p *AsyncPool) { m.apool = p }

// Shutdown ends the module's background machinery: pipeline counters
// still unfolded are flushed into their guards' Stats, and a
// module-owned async pool is closed. Call it after the workload
// completes and before reading guard statistics.
func (m *KernelModule) Shutdown() {
	m.mu.Lock()
	guards := make([]*Guard, 0, len(m.guards))
	for _, g := range m.guards {
		guards = append(guards, g)
	}
	pool, owns := m.apool, m.ownsAPool
	m.apool, m.ownsAPool = nil, false
	m.mu.Unlock()
	if pool != nil && owns {
		pool.Close()
	}
	for _, g := range guards {
		g.AsyncFlushStats()
	}
}

// check runs one flow check, through the pool when one is attached.
func (m *KernelModule) check(g *Guard) Result {
	if m.pool != nil {
		return m.pool.Do(g)
	}
	return g.Check()
}

// report appends a violation report under the module lock.
func (m *KernelModule) report(r ViolationReport) {
	m.mu.Lock()
	m.Reports = append(m.Reports, r)
	m.mu.Unlock()
}

// ReportsSnapshot returns a copy of the accumulated violation reports.
func (m *KernelModule) ReportsSnapshot() []ViolationReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ViolationReport(nil), m.Reports...)
}

// Protect configures IPT for the process (step 3 of Figure 1): programs
// the trace-unit MSRs exactly as §5.1 describes, attaches the trace sink
// to the process's CPU, installs the endpoint interceptors, and registers
// the checking engine. The returned Guard exposes statistics.
func (m *KernelModule) Protect(p *kernelsim.Process, ocfg *cfg.Graph, ig *itc.Graph, pol Policy) (*Guard, error) {
	topa := ipt.NewToPA(regionSizes()...)
	tr := ipt.NewTracer(topa)
	// IA32_RTIT_CTL: TraceEn+BranchEn on, OS clear / User set (trace
	// user-level flow only), CR3Filter on, FabricEn clear, ToPA on.
	ctl := ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlCR3Filter | ipt.CtlToPA
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
		return nil, err
	}
	if err := tr.WriteMSR(ipt.MSRRTITCR3Match, p.CR3); err != nil {
		return nil, err
	}
	tr.SetCR3(p.CR3)

	if p.CPU.Branch != nil {
		p.CPU.Branch = trace.MultiSink{p.CPU.Branch, tr}
	} else {
		p.CPU.Branch = tr
	}

	g := New(p.AS, ocfg, ig, tr, pol)
	m.mu.Lock()
	m.guards[p.CR3] = g
	if pol.Async && m.apool == nil {
		m.apool = NewAsyncPool(pol.AsyncWorkers, pol.AsyncQueue)
		m.ownsAPool = true
	}
	apool := m.apool
	m.mu.Unlock()
	if pol.Async && apool != nil {
		g.EnableAsync(apool)
	}
	if pol.CheckOnPMI {
		// The worst-case endpoint of §7.1.2: a buffer-full PMI triggers
		// a flow check even when the process avoids every sensitive
		// syscall (endpoint pruning). The hook must not recurse into a
		// check already in flight (inCheck is confined to the process's
		// goroutine: the hook fires from its own tracer writes).
		topa.OnFull = func() {
			if g.inCheck {
				return
			}
			res := m.check(g)
			if res.Verdict == VerdictViolation {
				m.report(ViolationReport{
					PID: p.PID, Process: p.Name, Syscall: pmiPseudoSyscall, Reason: res.Reason,
				})
				m.K.Kill(p, kernelsim.SIGKILL)
				p.CPU.PendingTrap = kernelsim.ErrKilled
			}
		}
	}
	for _, sysno := range pol.Endpoints {
		if m.installed[sysno] {
			continue
		}
		m.installed[sysno] = true
		m.K.Intercept(sysno, m.onEndpoint)
	}
	return g, nil
}

// onFork is the kernel's fork hook: an unprotected parent's child stays
// unprotected; a protected parent's child inherits protection before it
// is scheduled. A failure vetoes the fork in the kernel (the child must
// never run unguarded).
func (m *KernelModule) onFork(parent, child *kernelsim.Process) error {
	m.mu.Lock()
	pg, ok := m.guards[parent.CR3]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	if m.mc != nil {
		_, err := m.mcProtectForked(pg, child)
		return err
	}
	_, err := m.ProtectForked(pg, child)
	return err
}

// ProtectForked configures tracing and checking for a forked child of an
// already-protected process (§5.1 per-core trace setup, fleet fork
// semantics of DESIGN.md §10): a fresh ToPA and tracer filtered on the
// child's CR3, and a guard built by ForkGuard — the child inherits the
// parent's trained credit (shared artifact or live graph, by pointer)
// and its live approval cache, with a fresh window cursor and stats.
func (m *KernelModule) ProtectForked(parent *Guard, child *kernelsim.Process) (*Guard, error) {
	pol := parent.Policy
	topa := ipt.NewToPA(regionSizes()...)
	tr := ipt.NewTracer(topa)
	ctl := ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlCR3Filter | ipt.CtlToPA
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
		return nil, err
	}
	if err := tr.WriteMSR(ipt.MSRRTITCR3Match, child.CR3); err != nil {
		return nil, err
	}
	tr.SetCR3(child.CR3)

	if child.CPU.Branch != nil {
		child.CPU.Branch = trace.MultiSink{child.CPU.Branch, tr}
	} else {
		child.CPU.Branch = tr
	}

	g := ForkGuard(parent, child.AS, tr)
	m.mu.Lock()
	m.guards[child.CR3] = g
	apool := m.apool
	m.mu.Unlock()
	if pol.Async && apool != nil {
		g.EnableAsync(apool)
	}
	if pol.CheckOnPMI {
		topa.OnFull = func() {
			if g.inCheck {
				return
			}
			res := m.check(g)
			if res.Verdict == VerdictViolation {
				m.report(ViolationReport{
					PID: child.PID, Process: child.Name, Syscall: pmiPseudoSyscall, Reason: res.Reason,
				})
				m.K.Kill(child, kernelsim.SIGKILL)
				child.CPU.PendingTrap = kernelsim.ErrKilled
			}
		}
	}
	return g, nil
}

// Guards returns every registered guard (fleet stats aggregation).
func (m *KernelModule) Guards() []*Guard {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Guard, 0, len(m.guards))
	for _, g := range m.guards {
		out = append(out, g)
	}
	return out
}

// Unprotect removes a process's guard (its interceptors remain for other
// protected processes and simply pass unprotected callers through).
func (m *KernelModule) Unprotect(p *kernelsim.Process) {
	m.mu.Lock()
	delete(m.guards, p.CR3)
	m.mu.Unlock()
}

// onEndpoint is the alternative syscall handler (§5.2): it identifies the
// caller by CR3, forwards unprotected processes to the original handler,
// and runs the flow check for protected ones.
func (m *KernelModule) onEndpoint(p *kernelsim.Process, sysno uint64) error {
	m.mu.Lock()
	g, ok := m.guards[p.CR3]
	m.mu.Unlock()
	if !ok {
		return nil // not the protected process: forward
	}
	var res Result
	if m.mc != nil {
		res = m.mcCheck(p, g)
	} else {
		res = m.check(g)
	}
	if res.Verdict == VerdictViolation {
		m.report(ViolationReport{
			PID: p.PID, Process: p.Name, Syscall: sysno, Reason: res.Reason,
		})
		m.K.Kill(p, kernelsim.SIGKILL)
		return kernelsim.ErrKilled
	}
	return nil
}

func regionSizes() []int {
	sizes := make([]int, DefaultToPARegions)
	for i := range sizes {
		sizes[i] = DefaultToPARegion
	}
	return sizes
}
