package guard_test

// End-to-end degraded-mode tests: the real vulnerable server under full
// protection, with targeted write faults injected into its trace
// stream. Each test pins one cell of the policy contract — what happens
// to benign and hijacked executions when trace is lost or corrupted
// under each OnDegraded setting.

import (
	"strings"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// nthWriteFault replaces or damages the payload of the Nth tracer
// write, counting from 1.
type nthWriteFault struct {
	n    int
	mode string // "drop" or "corrupt"
	seen int
}

func (f *nthWriteFault) Corrupt(p []byte, off uint64) []byte {
	f.seen++
	if f.seen != f.n {
		return p
	}
	switch f.mode {
	case "drop": // lost output: in-band OVF marker, as the hardware leaves
		return []byte{0x02, 0xF3}
	default: // corrupt: garbage that violates the packet grammar
		return append(append([]byte(nil), p...), 0x02, 0xFF)
	}
}

// protectAndRunFault is protectAndRun with a write fault wired into the
// tracer before the workload executes. psbPeriod != 0 overrides the
// tracer's sync-point period: recovery semantics hinge on whether a PSB
// lands between the damage and the next endpoint check.
func (a *analyzed) protectAndRunFault(t *testing.T, input []byte, pol guard.Policy, fault ipt.WriteFault, psbPeriod int) (kernelsim.ExitStatus, *guard.KernelModule, *guard.Guard) {
	t.Helper()
	k := kernelsim.New()
	p, err := a.app.Spawn(k, input)
	if err != nil {
		t.Fatal(err)
	}
	km := guard.InstallModule(k)
	g, err := km.Protect(p, a.ocfg, a.ig, pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Tracer.Fault = fault
	if psbPeriod != 0 {
		g.Tracer.PSBPeriod = psbPeriod
	}
	st, err := k.Run(p, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, km, g
}

func TestFailClosedKillsOnTraceLoss(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	pol := guard.DefaultPolicy() // zero-value OnDegraded is FailClosed
	st, km, g := a.protectAndRunFault(t, benignTraffic(), pol, &nthWriteFault{n: 20, mode: "drop"}, 0)
	if !st.Killed || st.Signal != kernelsim.SIGKILL {
		t.Fatalf("benign run with trace loss under fail-closed: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 || !strings.Contains(km.Reports[0].Reason, "degraded") {
		t.Fatalf("reports = %v, want a degraded-trace violation", km.Reports)
	}
	if g.Stats.Overflows == 0 || g.Stats.FailClosures == 0 {
		t.Fatalf("stats = %+v, want overflow seen and fail-closure counted", g.Stats)
	}
}

func TestFailOpenSurvivesTraceLoss(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	pol := guard.DefaultPolicy()
	pol.OnDegraded = guard.FailOpen
	st, km, g := a.protectAndRunFault(t, benignTraffic(), pol, &nthWriteFault{n: 20, mode: "drop"}, 0)
	if !st.Exited {
		t.Fatalf("benign run with trace loss under fail-open: %v, want clean exit; reports %v", st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives under fail-open: %v", km.Reports)
	}
	if g.Stats.FailOpens == 0 || g.Stats.DegradedChecks == 0 {
		t.Fatalf("stats = %+v, want the unverified pass counted", g.Stats)
	}
}

// TestFailOpenLossWindowSemantics pins both halves of the fail-open
// contract against a real exploit. Trace lost shortly before the attack
// and never resynchronized (the default 2048-byte PSB period exceeds
// the remaining trace) is the explicit fail-open blind window: the
// attack escapes — the documented price of choosing availability. With
// frequent sync points the same loss resynchronizes before the exploit,
// the attack's own records decode cleanly, and detection still fires
// despite the fail-open policy.
func TestFailOpenLossWindowSemantics(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	pol := guard.DefaultPolicy()
	pol.OnDegraded = guard.FailOpen

	t.Run("unresynced loss is the blind window", func(t *testing.T) {
		st, km, g := a.protectAndRunFault(t, payload, pol, &nthWriteFault{n: 20, mode: "drop"}, 0)
		if st.Killed {
			t.Fatalf("run: %v — the blind window closed; this test's premise changed", st)
		}
		if g.Stats.FailOpens == 0 {
			t.Fatalf("stats = %+v, want the escape counted as fail-opens", g.Stats)
		}
		if len(km.Reports) != 0 {
			t.Fatalf("reports = %v in the blind window", km.Reports)
		}
	})
	t.Run("resynced loss still detects", func(t *testing.T) {
		st, km, _ := a.protectAndRunFault(t, payload, pol, &nthWriteFault{n: 20, mode: "drop"}, 256)
		if !st.Killed {
			t.Fatalf("ROP after resynchronized loss under fail-open: %v, want SIGKILL", st)
		}
		if len(km.Reports) == 0 {
			t.Fatal("no violation report")
		}
	})
}

func TestSlowPathRetryRecoversFromCorruption(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	pol := guard.DefaultPolicy()
	pol.OnDegraded = guard.SlowPathRetry
	// Frequent sync points give the recovery loop a decode origin past
	// the corruption before the next endpoint check.
	st, km, g := a.protectAndRunFault(t, benignTraffic(), pol, &nthWriteFault{n: 20, mode: "corrupt"}, 256)
	if !st.Exited {
		t.Fatalf("benign run with early corruption under slow-path-retry: %v, want recovery and clean exit; reports %v",
			st, km.Reports)
	}
	if len(km.Reports) != 0 {
		t.Fatalf("false positives: %v", km.Reports)
	}
	if g.Stats.Malformed == 0 {
		t.Fatalf("stats = %+v, want the corruption observed", g.Stats)
	}
	if g.Stats.Retries == 0 {
		t.Fatalf("stats = %+v, want recovery retries counted", g.Stats)
	}
}

func TestSlowPathRetryStillDetectsAttackAfterLoss(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())
	as, _ := a.app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}
	pol := guard.DefaultPolicy()
	pol.OnDegraded = guard.SlowPathRetry
	st, km, _ := a.protectAndRunFault(t, payload, pol, &nthWriteFault{n: 20, mode: "drop"}, 0)
	if !st.Killed {
		t.Fatalf("ROP with early trace loss under slow-path-retry: %v, want SIGKILL", st)
	}
	if len(km.Reports) == 0 {
		t.Fatal("no violation report")
	}
}
