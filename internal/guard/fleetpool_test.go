package guard_test

// Fleet admission tests (run them under -race): many tenants hammer a
// sharded FleetPool concurrently and every offered check must land in
// exactly one ledger bucket — admitted or shed — per shard and in the
// merged aggregate, with per-tenant fairness confining a noisy tenant's
// losses to itself.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/guard"
	"flowguard/internal/trace/ipt"
)

// newIdleGuard builds a guard over an empty trace buffer: its checks
// are trivially clean and fast, which maximizes admission contention —
// exactly what the ledger tests want to stress.
func newIdleGuard(t *testing.T, a *analyzed, pol guard.Policy) *guard.Guard {
	t.Helper()
	tr := ipt.NewTracer(ipt.NewToPA(1 << 16))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		t.Fatal(err)
	}
	return guard.New(nil, a.ocfg, a.ig, tr, pol)
}

func TestFleetPoolShardIndexDeterministic(t *testing.T) {
	f := guard.NewFleetPool(8, 2)
	seen := make(map[int]bool)
	for _, tenant := range []string{"", "a", "tenant-000", "tenant-001", "tenant-063", "x/y/z"} {
		i := f.ShardIndex(tenant)
		if i < 0 || i >= f.NumShards() {
			t.Fatalf("tenant %q mapped out of range: %d", tenant, i)
		}
		if j := f.ShardIndex(tenant); j != i {
			t.Fatalf("tenant %q unstable: %d then %d", tenant, i, j)
		}
		seen[i] = true
	}
	if len(seen) < 2 {
		t.Fatalf("every probe tenant landed on one shard of %d; hash is degenerate", f.NumShards())
	}
	if guard.NewFleetPool(1, 1).ShardIndex("anything") != 0 {
		t.Fatal("single-shard pool must map every tenant to shard 0")
	}
}

// TestFleetPoolLedgerSkewed drives a heavily skewed tenant population
// (one tenant offers ~8× any other's load) through a sharded pool from
// concurrent goroutines, then audits the ledgers: per shard and merged,
// checks == admitted + shed with nothing double-counted and nothing
// silently dropped, and the shard sum equals the merged snapshot.
func TestFleetPoolLedgerSkewed(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())

	const (
		shards  = 4
		workers = 2
		tenants = 12
		rounds  = 40
	)
	fp := guard.NewFleetPool(shards, workers)
	// A small stall keeps slots occupied so the over-share path (TryDo
	// then ShedFair) is actually exercised, not just the blocking one.
	for _, p := range fp.Shards() {
		p.Stall = func() time.Duration { return 200 * time.Microsecond }
	}

	offered := make([]atomic.Uint64, shards)
	names := make([]string, tenants)
	weights := make([]int, tenants)
	guards := make([][]*guard.Guard, tenants)
	for i := range names {
		names[i] = string(rune('a' + i))
		weights[i] = 1
		if i == 0 {
			weights[i] = 8 // the noisy tenant
		}
		for w := 0; w < weights[i]; w++ {
			guards[i] = append(guards[i], newIdleGuard(t, a, guard.DefaultPolicy()))
		}
	}

	var wg sync.WaitGroup
	for i := range names {
		for w := 0; w < weights[i]; w++ {
			wg.Add(1)
			go func(tenant string, shard int, g *guard.Guard) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					offered[shard].Add(1)
					fp.Do(tenant, g)
				}
			}(names[i], fp.ShardIndex(names[i]), guards[i][w])
		}
	}
	wg.Wait()

	var total uint64
	snaps := fp.ShardSnapshots()
	var sum guard.PoolStats
	for s, ps := range snaps {
		off := offered[s].Load()
		total += off
		if ps.Checks+ps.Shed != off {
			t.Errorf("shard %d ledger: admitted %d + shed %d != offered %d", s, ps.Checks, ps.Shed, off)
		}
		if ps.FairnessSheds > ps.Shed {
			t.Errorf("shard %d: fairness sheds %d exceed total sheds %d", s, ps.FairnessSheds, ps.Shed)
		}
		sum.Merge(ps)
	}
	merged := fp.Snapshot()
	if sum.Checks != merged.Checks || sum.Shed != merged.Shed || sum.FairnessSheds != merged.FairnessSheds {
		t.Errorf("shard sum %+v diverges from merged snapshot %+v", sum, merged)
	}
	if merged.Checks+merged.Shed != total {
		t.Errorf("merged ledger: admitted %d + shed %d != offered %d", merged.Checks, merged.Shed, total)
	}

	// The guard-side ledger must mirror the pool's: every offered check
	// reached exactly one guard as an admitted or shed check.
	var agg guard.Stats
	for i := range guards {
		for _, g := range guards[i] {
			agg.Merge(&g.Stats)
		}
	}
	if agg.Checks != total {
		t.Errorf("guards account %d checks, %d were offered", agg.Checks, total)
	}
	if agg.Shed != merged.Shed || agg.FairnessSheds != merged.FairnessSheds {
		t.Errorf("guard sheds (%d total, %d fairness) diverge from pool (%d, %d)",
			agg.Shed, agg.FairnessSheds, merged.Shed, merged.FairnessSheds)
	}
}

// TestFleetPoolFairnessIsolation pins the fairness property itself: on
// one shard with stalled checker slots, a tenant running 8 concurrent
// check loops is demoted to best-effort admission and sheds, while
// sequential (within-fair-share) tenants are never fairness-shed —
// their checks all block, admit, and come back clean.
func TestFleetPoolFairnessIsolation(t *testing.T) {
	a := analyze(t, apps.Vulnd())
	a.train(t, benignTraffic())

	fp := guard.NewFleetPool(1, 2)
	fp.Shards()[0].Stall = func() time.Duration { return time.Millisecond }

	const (
		noisyWorkers = 8
		noisyRounds  = 12
		quietTenants = 5
		quietRounds  = 8
	)
	noisy := make([]*guard.Guard, noisyWorkers)
	for i := range noisy {
		noisy[i] = newIdleGuard(t, a, guard.DefaultPolicy())
	}
	quiet := make([]*guard.Guard, quietTenants)
	for i := range quiet {
		quiet[i] = newIdleGuard(t, a, guard.DefaultPolicy())
	}

	var wg sync.WaitGroup
	for i := range noisy {
		wg.Add(1)
		go func(g *guard.Guard) {
			defer wg.Done()
			for r := 0; r < noisyRounds; r++ {
				fp.Do("noisy", g)
			}
		}(noisy[i])
	}
	for i := range quiet {
		wg.Add(1)
		go func(tenant string, g *guard.Guard) {
			defer wg.Done()
			for r := 0; r < quietRounds; r++ {
				if res := fp.Do(tenant, g); res.Degraded {
					t.Errorf("tenant %s degraded within its fair share: %s", tenant, res.Reason)
				}
			}
		}(string(rune('a'+i)), quiet[i])
	}
	wg.Wait()

	var noisyStats, quietStats guard.Stats
	for _, g := range noisy {
		noisyStats.Merge(&g.Stats)
	}
	for _, g := range quiet {
		quietStats.Merge(&g.Stats)
	}
	if noisyStats.FairnessSheds == 0 {
		t.Error("an 8-way tenant on a stalled 2-slot shard was never fairness-shed")
	}
	if quietStats.FairnessSheds != 0 || quietStats.Shed != 0 {
		t.Errorf("within-share tenants were shed: %d fairness, %d total", quietStats.FairnessSheds, quietStats.Shed)
	}
	if quietStats.Checks != quietTenants*quietRounds {
		t.Errorf("quiet tenants ran %d of %d checks", quietStats.Checks, quietTenants*quietRounds)
	}
	ps := fp.Snapshot()
	want := uint64(noisyWorkers*noisyRounds + quietTenants*quietRounds)
	if ps.Checks+ps.Shed != want {
		t.Errorf("ledger: admitted %d + shed %d != offered %d", ps.Checks, ps.Shed, want)
	}
	if ps.FairnessSheds != noisyStats.FairnessSheds {
		t.Errorf("pool fairness sheds %d != noisy tenant's %d", ps.FairnessSheds, noisyStats.FairnessSheds)
	}
}
