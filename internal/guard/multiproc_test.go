package guard_test

import (
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/guard"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// sharedCore wires one trace unit (one core) to several interleaved
// processes, with the kernel reprogramming the unit's CR3 view at every
// context switch — the real deployment shape §5.1 describes and the
// single-CR3-filter limitation §6 suggestion 2 addresses.
func sharedCore(k *kernelsim.Kernel, tr *ipt.Tracer, procs ...*kernelsim.Process) {
	for _, p := range procs {
		if p.CPU.Branch != nil {
			p.CPU.Branch = trace.MultiSink{p.CPU.Branch, tr}
		} else {
			p.CPU.Branch = tr
		}
	}
	k.OnSwitch = func(p *kernelsim.Process) { tr.SetCR3(p.CR3) }
}

// TestCR3FilterIsolatesInterleavedProcesses: with the filter set to A's
// CR3, an interleaved run traces exactly what A alone would produce.
func TestCR3FilterIsolatesInterleavedProcesses(t *testing.T) {
	app := apps.Vulnd()
	inA := []byte("G /index\nG /about\n")
	inB := []byte("H /x\nG /static/zzz\nG /q\n")

	// Reference: A alone.
	kRef := kernelsim.New()
	pRef, err := app.Spawn(kRef, inA)
	if err != nil {
		t.Fatal(err)
	}
	trRef := ipt.NewTracer(ipt.NewToPA(16 << 20))
	if err := trRef.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		t.Fatal(err)
	}
	pRef.CPU.Branch = trRef
	if st, err := kRef.Run(pRef, 50_000_000); err != nil || !st.Exited {
		t.Fatalf("reference run: %v %v", st, err)
	}
	refTIPs := trRef.TIPCount

	// Interleaved: A and B share the core; the filter tracks A.
	k := kernelsim.New()
	pA, err := app.Spawn(k, inA)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := app.Spawn(k, inB)
	if err != nil {
		t.Fatal(err)
	}
	tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace|ipt.CtlCR3Filter); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMSR(ipt.MSRRTITCR3Match, pA.CR3); err != nil {
		t.Fatal(err)
	}
	sharedCore(k, tr, pA, pB)
	sts, err := k.RunInterleaved([]*kernelsim.Process{pA, pB}, 512, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if !st.Exited {
			t.Fatalf("proc %d: %v", i, st)
		}
	}
	if tr.TIPCount != refTIPs {
		t.Errorf("filtered interleaved TIPs = %d, want A-alone count %d", tr.TIPCount, refTIPs)
	}
	// And the unfiltered variant sees strictly more.
	k2 := kernelsim.New()
	pA2, _ := app.Spawn(k2, inA)
	pB2, _ := app.Spawn(k2, inB)
	tr2 := ipt.NewTracer(ipt.NewToPA(16 << 20))
	if err := tr2.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
		t.Fatal(err)
	}
	sharedCore(k2, tr2, pA2, pB2)
	if _, err := k2.RunInterleaved([]*kernelsim.Process{pA2, pB2}, 512, 200_000_000); err != nil {
		t.Fatal(err)
	}
	if tr2.TIPCount <= refTIPs {
		t.Errorf("unfiltered interleaved TIPs = %d, want > %d", tr2.TIPCount, refTIPs)
	}
}

// TestSingleCR3FilterLimitation demonstrates why §6 asks for multi-CR3
// filtering: on a shared core protecting process A, an attack against
// the *other* process B is invisible, while the same attack against A is
// killed.
func TestSingleCR3FilterLimitation(t *testing.T) {
	app := apps.Vulnd()
	an := analyze(t, app)
	an.train(t, benignTraffic())
	as, _ := app.Load()
	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		t.Fatal(err)
	}

	run := func(attackA bool) (aKilled, bKilled bool, reports []guard.ViolationReport) {
		k := kernelsim.New()
		inA, inB := benignTraffic(), benignTraffic()
		if attackA {
			inA = payload
		} else {
			inB = payload
		}
		pA, err := app.Spawn(k, inA)
		if err != nil {
			t.Fatal(err)
		}
		pB, err := app.Spawn(k, inB)
		if err != nil {
			t.Fatal(err)
		}
		// One core: a single tracer, CR3-filtered to A, checked at A's
		// endpoints only.
		tr := ipt.NewTracer(ipt.NewToPA(16 << 10))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace|ipt.CtlCR3Filter); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteMSR(ipt.MSRRTITCR3Match, pA.CR3); err != nil {
			t.Fatal(err)
		}
		sharedCore(k, tr, pA, pB)
		g := guard.New(pA.AS, an.ocfg, an.ig, tr, guard.DefaultPolicy())
		var reps []guard.ViolationReport
		for _, sysno := range guard.DefaultEndpoints() {
			k.Intercept(sysno, func(p *kernelsim.Process, sysno uint64) error {
				if p != pA {
					return nil // only A is protected
				}
				res := g.Check()
				if res.Verdict == guard.VerdictViolation {
					reps = append(reps, guard.ViolationReport{
						PID: p.PID, Process: p.Name, Syscall: sysno, Reason: res.Reason,
					})
					k.Kill(p, kernelsim.SIGKILL)
					return kernelsim.ErrKilled
				}
				return nil
			})
		}
		sts, err := k.RunInterleaved([]*kernelsim.Process{pA, pB}, 512, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return sts[0].Killed, sts[1].Killed, reps
	}

	// Attack on the protected process: detected despite the interleaved
	// noise (the CR3 filter keeps B out of A's trace).
	aKilled, bKilled, reps := run(true)
	if !aKilled {
		t.Error("attack on the protected process was missed")
	}
	if bKilled {
		t.Error("benign sibling was killed")
	}
	if len(reps) == 0 {
		t.Error("no violation report for the protected process")
	}

	// Attack on the unprotected sibling: sails through — the single-CR3
	// limitation the paper's hardware suggestion fixes.
	aKilled, bKilled, reps = run(false)
	if aKilled || bKilled {
		t.Error("someone was killed, but B is outside the protection domain")
	}
	if len(reps) != 0 {
		t.Errorf("unexpected reports: %v", reps)
	}
}
