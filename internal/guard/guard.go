// Package guard implements FlowGuard's runtime protection engine — the
// paper's primary contribution (§3.2, §5): hybrid control-flow checking
// over Intel-PT-style traces with a fast path that never touches program
// binaries and a slow path with full precision.
//
// The fast path (§5.3) packet-scans the ToPA buffer from the most recent
// sync points, extracts at least Policy.PktCount TIP records striding
// across more than one module (at least one inside the executable), and
// binary-searches each consecutive TIP pair on the credit-labeled
// ITC-CFG. An edge absent from the graph is a definite violation (the
// graph is conservative, so checking introduces no false positives). An
// edge present but low-credit, or whose TNT-run signature was never seen
// in training, makes the window suspicious: the slow path re-checks it by
// fully decoding the trace at the instruction-flow layer and enforcing
// the fine-grained policies — TypeArmor-restricted forward edges and a
// shadow stack for returns. Clean slow-path verdicts are cached so
// subsequent fast paths accept the same edges (§7.1.1).
//
// Checking is amortized-incremental: the guard keeps the decoded TIP
// tail of the ToPA stream between checks, keyed by the buffer's write
// generation, so each check fast-decodes only the bytes appended since
// the previous one instead of re-scanning the buffered suffix. The
// steady-state check path performs no allocations. Guards for different
// processes may run checks concurrently (see CheckPool); slow-path
// verdict caches are striped for that purpose and may be shared between
// the guards of processes running the same binaries.
package guard

import (
	"fmt"
	"sync"
	"time"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
	"flowguard/internal/trace/ipt"
)

// Calibrated fast-path cost constants (see EXPERIMENTS.md). Together with
// ipt.CyclesPerDecodedInstr they reproduce the paper's ~60x fast/slow gap
// (§7.2.2).
const (
	// CyclesPerFastDecodeByte is the packet-grammar scan cost per trace
	// byte (a table-driven byte state machine sustains a couple of
	// bytes per cycle).
	CyclesPerFastDecodeByte = 0.5
	// CyclesPerTIPCheck covers the two binary searches, the credit and
	// TNT-signature assessment, and cache probes for one TIP record.
	CyclesPerTIPCheck = 130
	// HWDecoderSpeedup is the factor a dedicated hardware pattern-
	// matching decoder removes from the fast-decode share (§6 suggestion
	// 1, evaluated in §7.2.4).
	HWDecoderSpeedup = 20
	// CyclesPerInterception is the syscall-table detour, CR3
	// discrimination and bookkeeping cost per intercepted endpoint (the
	// "other" bar of Figure 5).
	CyclesPerInterception = 300
)

// Policy holds the §7.1.1 knobs.
type Policy struct {
	// PktCount is the minimum number of TIP packets checked per trigger
	// (lower bound 30 in the paper, defeating history-flushing attacks).
	PktCount int
	// CredRatio is the fraction of checked edges that must be
	// high-credit with matching TNT for the fast path to pass on its
	// own; 1.0 (the paper's setting) sends any low-credit edge to the
	// slow path.
	CredRatio float64
	// RequireModuleStride demands the window span more than one module
	// with at least one TIP inside the executable, extending the window
	// backwards if needed (anti return-to-lib history flushing).
	RequireModuleStride bool
	// Endpoints lists the intercepted security-sensitive syscalls.
	Endpoints []uint64
	// HWDecoder models the dedicated hardware decoder of §6.
	HWDecoder bool
	// CredMinCount raises the high-credit bar to edges observed at least
	// this many times in training — the multi-level credit labeling §4.3
	// sketches. Zero or one is the paper's binary labeling.
	CredMinCount uint32
	// PathSensitive enables the future-work extension of §7.1.2: windows
	// must also match trained consecutive-edge pairs, defeating attacks
	// that stitch individually-trained edges into novel orders (at the
	// cost of more slow-path escalations).
	PathSensitive bool
	// CheckOnPMI runs a flow check every time the ToPA buffer fills —
	// the worst-case endpoint fallback §7.1.2 proposes against
	// endpoint-pruning attacks that avoid all sensitive syscalls.
	CheckOnPMI bool
	// NaiveFullDecode disables the fast path entirely: every endpoint
	// check decodes the window at the instruction-flow layer — the
	// strawman design §2/§3.1 argues against ("decoding the traces is
	// prohibitively slow on the fly"). Exists for the ablation that
	// quantifies the ITC-CFG fast path's contribution.
	NaiveFullDecode bool
	// OnDegraded selects the fail behavior when the trace window cannot
	// be verified — overflow, gap, grammar-level corruption — or when an
	// overloaded CheckPool sheds the check (§7.1.2 worst cases). The
	// zero value FailClosed treats unverifiable as a violation.
	OnDegraded DegradedMode
	// RetryMax bounds SlowPathRetry recovery attempts per check
	// (0 = DefaultRetryMax).
	RetryMax int
	// Async enables the asynchronous checking pipeline (§6 offloading,
	// DESIGN.md §9): ToPA region-full events capture filled trace
	// windows for a background AsyncPool, and endpoint checks wait for
	// the pipeline to catch up instead of decoding the whole backlog
	// inline. Verdicts are identical to synchronous checking — the gate
	// always completes the residual decode itself before deciding.
	Async bool
	// MaxLagWindows is the endpoint gate's staleness bound: the largest
	// captured-but-unchecked window backlog the gate will take onto the
	// syscall's critical path without first waiting for the workers
	// (0 = DefaultMaxLagWindows).
	MaxLagWindows int
	// AsyncGateWait is the gate's catch-up deadline. When the backlog
	// stays above MaxLagWindows past it, the gate stops waiting, counts
	// a watchdog shed, and drains synchronously — never deadlocks, never
	// verdicts over unchecked trace (0 = DefaultAsyncGateWait).
	AsyncGateWait time.Duration
	// AsyncQueue bounds the captured-window queue. A full queue stalls
	// the producer briefly and then makes it drain the oldest window
	// itself — backpressure into the tracer, never trace loss
	// (0 = DefaultAsyncQueue).
	AsyncQueue int
	// AsyncWorkers sizes the pool KernelModule creates on demand when
	// Async is set and no pool was attached (0 = DefaultAsyncWorkers).
	AsyncWorkers int
}

// DefaultEndpoints is the PathArmor-like sensitive-syscall set the paper
// adopts (§5.2), plus sigreturn (SROP) and write (the detection points of
// §7.1.2).
func DefaultEndpoints() []uint64 {
	return []uint64{
		kernelsim.SysExecve,
		kernelsim.SysMmap,
		kernelsim.SysMprotect,
		kernelsim.SysSigreturn,
		kernelsim.SysWrite,
	}
}

// DefaultPolicy returns the paper's evaluated configuration.
func DefaultPolicy() Policy {
	return Policy{
		PktCount:            30,
		CredRatio:           1.0,
		RequireModuleStride: true,
		Endpoints:           DefaultEndpoints(),
	}
}

// Verdict is the outcome of one flow check.
type Verdict uint8

// Verdicts.
const (
	VerdictClean Verdict = iota
	VerdictViolation
)

func (v Verdict) String() string {
	if v == VerdictClean {
		return "clean"
	}
	return "violation"
}

// Result describes one flow check.
type Result struct {
	Verdict Verdict
	// Reason is a human-readable diagnosis for violations.
	Reason string
	// TIPs is the number of TIP records checked.
	TIPs int
	// LowCredit is the number of checked edges that were in the graph
	// but not credibly trained.
	LowCredit int
	// UsedSlowPath reports the slow path ran.
	UsedSlowPath bool
	// Health classifies the trace window the check ran over.
	Health TraceHealth
	// Degraded reports the verdict was resolved under Policy.OnDegraded
	// (damaged window or shed pooled check) rather than by a clean
	// hybrid check.
	Degraded bool
	// Retries is the number of SlowPathRetry recovery attempts consumed.
	Retries int
	// DecodeCycles is the fast packet-scan cost; CheckCycles the graph
	// search and credit assessment; OtherCycles the interception
	// bookkeeping; SlowCycles the instruction-flow decode and precise
	// checking. These are the four Figure 5 overhead components (trace
	// cycles are metered by the tracer itself).
	DecodeCycles, CheckCycles, OtherCycles, SlowCycles uint64
}

// FastCycles returns the total fast-path cost of the check.
func (r *Result) FastCycles() uint64 { return r.DecodeCycles + r.CheckCycles }

// Stats accumulates across checks.
type Stats struct {
	Checks       uint64
	SlowChecks   uint64
	Violations   uint64
	TIPsChecked  uint64
	HighEdges    uint64 // runtime high-credit edge observations
	LowEdges     uint64 // runtime low-credit / sig-mismatch observations
	DecodeCycles uint64 // fast packet-grammar scanning
	CheckCycles  uint64 // ITC-CFG searches + credit assessment
	OtherCycles  uint64 // interception and bookkeeping
	SlowCycles   uint64 // instruction-flow decoding + precise checks
	BytesScanned uint64
	CacheHits    uint64

	// Degraded-mode accounting (§7.1.2 worst cases).
	Resyncs        uint64 // window cache rebuilt after a wrap outran it
	Overflows      uint64 // OVF packets decoded: trace bytes lost upstream
	Gaps           uint64 // checks over a wrapped buffer holding no sync point
	Malformed      uint64 // windows rejected for grammar-level corruption
	DegradedChecks uint64 // checks resolved under Policy.OnDegraded
	FailOpens      uint64 // degraded checks passed open (unverified)
	FailClosures   uint64 // degraded checks failed closed
	Retries        uint64 // SlowPathRetry recovery attempts
	Shed           uint64 // checks shed by an overloaded CheckPool
	FairnessSheds  uint64 // sheds forced by per-tenant fairness (FleetPool)

	// Asynchronous-pipeline accounting (Policy.Async, DESIGN.md §9).
	AsyncWindows       uint64 // region-full captures handed to the worker pool
	AsyncMaxLag        uint64 // high-water mark of captured-but-unchecked windows
	BackpressureStalls uint64 // producer stalls against a full pending queue
	WatchdogSheds      uint64 // sheds to synchronous draining (gate deadline or watchdog)
	WorkerCrashes      uint64 // contained async-worker crashes (injected or real)

	// Fleet accounting (DESIGN.md §10).
	ForkInherits uint64 // guards created by fork inheritance (ForkGuard)

	// Preemptive-world accounting (DESIGN.md §11).
	StreamLosses uint64 // demux-reported span losses folded into health
}

// FastCycles returns the accumulated fast-path cost (decode + check).
func (s *Stats) FastCycles() uint64 { return s.DecodeCycles + s.CheckCycles }

// Merge adds o into s — the deterministic aggregation step after a
// parallel multi-process run (each guard's stats are themselves
// deterministic functions of that process's trace). The statssync
// annotation makes forgetting a newly added field a vet error, before
// the reflection test would catch it.
//
//fg:statssync Stats
func (s *Stats) Merge(o *Stats) {
	s.Checks += o.Checks
	s.SlowChecks += o.SlowChecks
	s.Violations += o.Violations
	s.TIPsChecked += o.TIPsChecked
	s.HighEdges += o.HighEdges
	s.LowEdges += o.LowEdges
	s.DecodeCycles += o.DecodeCycles
	s.CheckCycles += o.CheckCycles
	s.OtherCycles += o.OtherCycles
	s.SlowCycles += o.SlowCycles
	s.BytesScanned += o.BytesScanned
	s.CacheHits += o.CacheHits
	s.Resyncs += o.Resyncs
	s.Overflows += o.Overflows
	s.Gaps += o.Gaps
	s.Malformed += o.Malformed
	s.DegradedChecks += o.DegradedChecks
	s.FailOpens += o.FailOpens
	s.FailClosures += o.FailClosures
	s.Retries += o.Retries
	s.Shed += o.Shed
	s.FairnessSheds += o.FairnessSheds
	s.AsyncWindows += o.AsyncWindows
	// A high-water mark merges by maximum, not sum: the merged value is
	// the worst staleness any constituent guard ever observed.
	if o.AsyncMaxLag > s.AsyncMaxLag {
		s.AsyncMaxLag = o.AsyncMaxLag
	}
	s.BackpressureStalls += o.BackpressureStalls
	s.WatchdogSheds += o.WatchdogSheds
	s.WorkerCrashes += o.WorkerCrashes
	s.ForkInherits += o.ForkInherits
	s.StreamLosses += o.StreamLosses
}

// CredRatioRuntime returns the runtime fraction of credible edges
// (Figure 5(d)'s cred-ratio series).
func (s *Stats) CredRatioRuntime() float64 {
	t := s.HighEdges + s.LowEdges
	if t == 0 {
		return 1
	}
	return float64(s.HighEdges) / float64(t)
}

// edgeKey identifies a (source, target, TNT signature) triple in the
// slow-path verdict cache.
type edgeKey struct {
	src, dst, sig uint64
}

// winState is the incremental window cache: the retained suffix of the
// logical trace stream, its streaming decoder, and the stream offset the
// retained bytes start at. Between checks only appended bytes are copied
// and decoded; a wrap that outran the previous check falls back to a
// full resynchronizing rescan.
type winState struct {
	src   *ipt.ToPA
	total uint64 // stream offset consumed into buf
	base  uint64 // absolute stream offset of buf[0]
	buf   []byte
	dec   ipt.WindowDecoder
	// checkedTotal is the stream offset at the end of the previous
	// check — the last byte a verdict ever vouched for. Synchronously it
	// always equals total between checks; with the async pipeline,
	// workers advance total ahead of it, and the wrap-loss rule keys off
	// checkedTotal so loss classification is identical in both modes
	// (a span evicted before any verdict covered it is a loss even if a
	// worker managed to pre-decode part of it).
	checkedTotal uint64
	// asyncErr is a packet-grammar error an async worker hit while
	// pre-decoding; the next check replays it through the same malformed
	// path the synchronous decoder would have taken. Workers stop
	// feeding once it is set.
	asyncErr error
	// prevOVF is the decoder's OVF count at the previous check; the
	// delta classifies overflow between checks.
	prevOVF int
	// wrapLoss marks the current check as following an unmarked loss:
	// either a wrap outran the cache (trace between the previous check
	// and the resident window evicted unchecked) or the unwrapped
	// stream's prefix was damaged and skipped unattributed. No OVF
	// packet marks these, so the health classification and the
	// SlowPathRetry tail rule consume this flag instead.
	wrapLoss bool
}

// modScratch tracks module membership of a TIP window without per-check
// allocations: address spaces hold a handful of modules, so a linear
// scan over a reusable slice beats a map.
type modScratch struct {
	mods   []*module.Loaded
	inExec bool
}

func (m *modScratch) reset() {
	m.mods = m.mods[:0]
	m.inExec = false
}

//fg:hotpath
func (m *modScratch) add(as *module.AddressSpace, ip uint64) {
	l := as.FindModule(ip)
	if l == nil {
		return
	}
	if l == as.Exec {
		m.inExec = true
	}
	for _, seen := range m.mods {
		if seen == l {
			return
		}
	}
	m.mods = append(m.mods, l)
}

func (m *modScratch) ok() bool { return m.inExec && len(m.mods) > 1 }

// Guard is the flow-checking engine bound to one protected process image.
//
// Check is safe for concurrent use (calls on the same guard serialize on
// an internal mutex; the window cache and tracer are single streams).
// Guards of *different* processes check fully in parallel: the ITC-CFG
// is read lock-free after training and the approval cache is striped.
type Guard struct {
	AS     *module.AddressSpace
	OCFG   *cfg.Graph
	ITC    *itc.Graph
	Tracer *ipt.Tracer
	Policy Policy

	// art, when non-nil, is the shared immutable label artifact the fast
	// path probes instead of the live ITC graph — the fleet configuration
	// (DESIGN.md §10), where thousands of per-process guards reference
	// one itc.Artifact per binary by pointer. The slow path still uses
	// ITC for approval labeling when both are set; fleet guards built by
	// Binary.NewGuard carry only the artifact.
	art *itc.Artifact

	// appr caches slow-path "no attack" verdicts; it may be shared
	// between guards via ShareApprovals.
	appr *ApprovalCache

	// mu serializes checks on this guard.
	mu sync.Mutex

	// inCheck guards against PMI re-entrance: a check triggered by the
	// buffer-full hook must not recurse when its own reads flush packets.
	inCheck bool

	win     winState
	scratch modScratch

	// streamLoss is set by NoteStreamLoss when the multicore demux
	// reports this process's spans lost or misattributed in a shared
	// per-core stream; the next window classification consumes it as an
	// unmarked loss (wrap-loss shape: no OVF packet marks the hole).
	streamLoss bool

	// async, when non-nil, is the guard's attachment to an AsyncPool
	// (EnableAsync): captured-window queue, cursor, and pipeline
	// counters. nil guards check fully synchronously.
	async *asyncState

	Stats Stats
}

// New builds a guard over a loaded image, its O-CFG and trained ITC-CFG,
// and the tracer observing the process.
func New(as *module.AddressSpace, ocfg *cfg.Graph, ig *itc.Graph, tr *ipt.Tracer, pol Policy) *Guard {
	return &Guard{
		AS: as, OCFG: ocfg, ITC: ig, Tracer: tr, Policy: pol,
		appr: NewApprovalCache(),
	}
}

// ShareApprovals replaces the guard's slow-path verdict cache, letting
// several guards over the same binaries pool their approvals (a clean
// slow-path verdict in one process then serves every sibling's fast
// path). Call before checking starts.
func (g *Guard) ShareApprovals(c *ApprovalCache) { g.appr = c }

// Approvals returns the guard's slow-path verdict cache.
func (g *Guard) Approvals() *ApprovalCache { return g.appr }

// InvalidateWindow drops the incremental window cache, forcing the next
// check to rescan the buffered trace from scratch (tests and benchmarks
// use this to measure the non-amortized path).
func (g *Guard) InvalidateWindow() {
	g.mu.Lock()
	g.win.src = nil
	g.mu.Unlock()
}

// window collects the TIP records to check. The underlying rule is the
// paper's (§5.3: walk the PSB sync points backwards until the policy's
// packet count and module-stride requirements hold — "it is not required
// to decode the whole ToPA buffer"), but decoding is incremental: only
// bytes appended since the previous check are copied out of the ToPA and
// fast-decoded; the decoded TIP tail and sync points are retained. It
// also returns the window region so a slow-path re-check decodes the
// same bounded span, the number of newly scanned bytes for the cost
// model, and the trace-health classification Policy.OnDegraded responds
// to: overflow since the last check (or an unresynchronized overflow at
// the tail) is HealthResynced, a wrapped buffer with no resident sync
// point is HealthGap, and grammar-level corruption is HealthMalformed
// alongside the error. On a decode error the window cache is dropped —
// the decoder state is unusable — so a later check restarts from a
// fresh snapshot.
//
//fg:hotpath steady-state window maintenance must not allocate
func (g *Guard) window() (tips []ipt.TIPRecord, region []byte, scanned uint64, health TraceHealth, err error) {
	g.Tracer.Flush()
	return g.windowOn(&g.win, g.Tracer.Out)
}

// windowOn is window() over an explicit window cache and trace source —
// the same routine serves the guard's own process stream (g.win over the
// tracer's ToPA) and each per-thread stream (ThreadState.win over the
// thread's demux sink). The caller is responsible for the source being
// flushed/pumped up to date.
//
//fg:hotpath steady-state window maintenance must not allocate
func (g *Guard) windowOn(w *winState, topa *ipt.ToPA) (tips []ipt.TIPRecord, region []byte, scanned uint64, health TraceHealth, err error) {
	// Whatever this call classifies is "checked" for the next call's
	// loss rule: synchronously checkedTotal therefore always equals
	// total between calls, reducing the rule to the classic
	// AppendSince-outrun test.
	defer w.noteWindowed()
	total := topa.TotalWritten()
	w.wrapLoss = false
	if g.streamLoss {
		// The demux reported spans of this process's shared-core stream
		// lost or misattributed (damage inside a span, or an unmarked
		// context switch). No OVF packet marks the hole in the per-process
		// stream, so it is folded into the wrap-loss classification: the
		// health degrades to HealthResynced and the tail rule demands a
		// full-strength window past the loss.
		g.streamLoss = false
		g.Stats.StreamLosses++
		w.wrapLoss = true
	}
	fresh := w.src != topa || total < w.total
	if !fresh && total > w.checkedTotal && total-w.checkedTotal > uint64(topa.Held()) {
		// The buffer wrapped past the last *checked* offset: the span
		// between the previous check and the resident window was evicted
		// without any verdict ever vouching for it — the §7.1.2 worst
		// case. Async workers may have pre-decoded part of that span, but
		// the synchronous checker could never have seen it, so the
		// prefetched decoder state is discarded and the check classified
		// exactly as the synchronous path classifies it. Resync from a
		// snapshot (a first check over an already-wrapped buffer is NOT a
		// loss: no coverage was promised before tracking began).
		fresh = true
		w.wrapLoss = true
		g.Stats.Resyncs++
	}
	if !fresh {
		// The cost model charges every byte decoded since the last
		// verdict, whether a worker pre-decoded it or the gate does the
		// residual below — the work is the same, only its placement
		// relative to the syscall differs.
		scanned = total - w.checkedTotal
		if w.asyncErr != nil {
			// A worker hit this grammar error pre-decoding bytes the
			// synchronous checker would have decoded at this check;
			// resolve it exactly as the inline Feed below would have.
			ferr := w.asyncErr
			w.asyncErr = nil
			w.src = nil
			g.Stats.Malformed++
			return nil, nil, scanned, HealthMalformed, fmt.Errorf("guard: fast decode: %w", ferr)
		}
	}
	if !fresh && total > w.total {
		old := len(w.buf)
		nb, ok := topa.AppendSince(w.buf, w.total)
		if !ok {
			// Unreachable once the checkedTotal rule above passed
			// (total-w.total <= total-w.checkedTotal <= Held); kept as a
			// defensive resynchronization with identical classification.
			fresh = true
			w.wrapLoss = true
			g.Stats.Resyncs++
		} else {
			w.buf = nb
			w.total = total
			if ferr := w.dec.Feed(w.buf[old:]); ferr != nil {
				w.src = nil
				g.Stats.Malformed++
				return nil, nil, scanned, HealthMalformed, fmt.Errorf("guard: fast decode: %w", ferr)
			}
		}
	}
	if fresh {
		// Any pre-decoded async state (including a pending worker error)
		// predates this snapshot and is superseded by it.
		w.asyncErr = nil
		w.src, w.total = topa, total
		w.buf = topa.SnapshotInto(w.buf[:0])
		w.base = total - uint64(len(w.buf))
		w.dec.Reset(int(w.base))
		w.prevOVF = 0
		scanned = uint64(len(w.buf))
		if ferr := w.dec.Feed(w.buf); ferr != nil {
			w.src = nil
			g.Stats.Malformed++
			return nil, nil, scanned, HealthMalformed, fmt.Errorf("guard: fast decode: %w", ferr)
		}
	}
	// Forget history the ToPA itself no longer holds: the checker must
	// not see deeper windows than the wrapped buffer provides.
	if lo := total - uint64(topa.Held()); lo > w.base {
		n := copy(w.buf, w.buf[lo-w.base:])
		w.buf = w.buf[:n]
		w.base = lo
		w.dec.DropBefore(int(lo))
	}
	// Trace-health classification (§7.1.2): new OVF packets mean bytes
	// were lost since the last check; an overflow whose resynchronizing
	// PSB has not arrived yet leaves the stream tail unvouched-for.
	if d := w.dec.OVFTotal() - w.prevOVF; d > 0 {
		g.Stats.Overflows += uint64(d)
		w.prevOVF = w.dec.OVFTotal()
		health = HealthResynced
	} else if w.dec.OVFTotal() > 0 && !w.dec.Synced() {
		health = HealthResynced
	} else if w.wrapLoss {
		// Checked coverage has a hole even though the resident stream
		// decodes cleanly: wrap loss is overflow loss without the
		// courtesy of an OVF marker.
		health = HealthResynced
	}
	pts := w.dec.SyncPoints()
	if len(pts) == 0 {
		if topa.Held() > 0 {
			// Trace exists but not one resident byte can be attributed.
			// Wrapped: everything postdates the last sync point the
			// buffer ever held (a PAD flood lands here). Unwrapped: a
			// clean stream always opens with a PSB, so the sync points
			// themselves were destroyed. Either way, reading this as
			// "nothing traced" would pass an unverifiable window clean.
			g.Stats.Gaps++
			return nil, nil, scanned, HealthGap, nil
		}
		return nil, nil, scanned, health, nil // nothing traced yet
	}
	if !topa.Wrapped() && pts[0] > int(w.base) {
		// The stream does not open with a sync point even though nothing
		// wrapped away: the prefix was damaged and skipped unattributed.
		// Unmarked loss, like a wrap past the cache — the tail rule must
		// demand a full-strength window past the skip.
		w.wrapLoss = true
		if health == HealthClean {
			health = HealthResynced
		}
	}
	all := w.dec.Tips()
	for k := len(pts) - 1; k >= 0; k-- {
		sub := ipt.TipsFrom(all, pts[k])
		if (len(sub) >= g.Policy.PktCount && g.strideOK(sub)) || k == 0 {
			// k == 0: whole retained buffer, best effort.
			return g.trim(sub), w.buf[uint64(pts[k])-w.base:], scanned, health, nil
		}
	}
	return nil, nil, scanned, health, nil
}

// trim keeps the window tail: at least PktCount records, extended
// backwards only as far as the module-stride rule demands. Module
// membership is maintained incrementally while extending, so trim is
// O(window) rather than quadratic.
//
//fg:hotpath
func (g *Guard) trim(tips []ipt.TIPRecord) []ipt.TIPRecord {
	if len(tips) <= g.Policy.PktCount {
		return tips
	}
	start := len(tips) - g.Policy.PktCount
	if !g.Policy.RequireModuleStride {
		return tips[start:]
	}
	s := &g.scratch
	s.reset()
	for _, t := range tips[start:] {
		s.add(g.AS, t.IP)
	}
	for start > 0 && !s.ok() {
		start--
		s.add(g.AS, tips[start].IP)
	}
	return tips[start:]
}

// strideOK checks the multi-module requirement.
//
//fg:hotpath
func (g *Guard) strideOK(tips []ipt.TIPRecord) bool {
	if !g.Policy.RequireModuleStride {
		return true
	}
	s := &g.scratch
	s.reset()
	for _, t := range tips {
		s.add(g.AS, t.IP)
	}
	return s.ok()
}

// Check runs the hybrid flow check: fast path always, slow path when the
// fast path finds the window suspicious. It is the routine the kernel
// module invokes at every intercepted endpoint (§5.2 step 5). A window
// that is not HealthClean — overflowed, gapped, or corrupt — is resolved
// under Policy.OnDegraded instead of the normal hybrid path.
//
//fg:hotpath invoked at every intercepted endpoint
func (g *Guard) Check() Result {
	if a := g.async; a != nil {
		// Bounded-staleness gate: wait (lock-free) for the pipeline to
		// drain to Policy.MaxLagWindows before taking the residual decode
		// onto the syscall's critical path.
		a.gateWait(g)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inCheck = true
	defer g.endCheck()
	if g.async != nil {
		g.asyncBeforeCheckLocked()
	}
	if g.art != nil {
		// A shared artifact is a fixed point-in-time label snapshot: its
		// generation never advances, so this is a one-time adoption.
		g.appr.SyncGen(g.art.Gen())
	} else if g.ITC != nil {
		// Approvals earned against a superseded label snapshot must be
		// re-earned (mid-run retraining relabels edges).
		g.appr.SyncGen(g.ITC.LabelGen())
	}
	g.Stats.Checks++
	tips, region, scanned, health, err := g.window()
	res := Result{TIPs: len(tips), Health: health, OtherCycles: CyclesPerInterception}
	res.DecodeCycles = uint64(float64(scanned) * g.fastDecodeCost())
	g.Stats.BytesScanned += scanned
	if err != nil || health != HealthClean {
		g.resolveDegradedOn(&res, &g.win, g.Tracer.Out, tips, region, err)
	} else if len(tips) >= 2 {
		g.runChecks(&res, tips, region, g.Policy.NaiveFullDecode)
	}
	g.finish(&res)
	if g.async != nil {
		g.asyncAfterCheckLocked()
	}
	return res
}

// endCheck is a named method rather than a closure so deferring it from
// the hot path does not capture g into a heap-allocated func value.
func (g *Guard) endCheck() { g.inCheck = false }

// NoteStreamLoss records that the multicore demux lost or misattributed
// spans of this process's trace in a shared per-core stream (grammar
// damage inside a span, or an unmarked context switch detected at a
// PSB). The next check — on any of the process's threads — classifies
// its window as following an unmarked loss, exactly like a wrap that
// outran the cache. Safe to call concurrently with checks.
func (g *Guard) NoteStreamLoss() {
	g.mu.Lock()
	g.streamLoss = true
	g.mu.Unlock()
}

// ThreadState is one thread's private check state: an incremental window
// cache over the thread's own trace sink. All threads of a process share
// the guard's graphs, approval cache, policy, and Stats; verdicts stay
// deterministic under preemption because each thread's checks read only
// its own demuxed stream, never a sibling's interleaved bytes.
type ThreadState struct {
	// Out is the thread's trace sink (the demux binding for the
	// process's CR3 while this thread runs).
	Out *ipt.ToPA
	win winState
}

// NewThreadState returns fresh per-thread check state over sink.
func NewThreadState(out *ipt.ToPA) *ThreadState { return &ThreadState{Out: out} }

// CheckThread runs the hybrid flow check over one thread's stream — the
// per-thread form of Check. Threads of the same process serialize on the
// guard's mutex (the approval cache and Stats are shared), but each
// check's evidence is the calling thread's private window, so racing
// syscall checks from sibling threads cannot perturb each other's
// verdicts. The caller must have pumped the demux up to date.
//
// The asynchronous pipeline is not consulted: per-thread streams are
// checked synchronously (the async capture hooks are bound to the
// process-level ToPA).
func (g *Guard) CheckThread(ts *ThreadState) Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inCheck = true
	defer g.endCheck()
	if g.art != nil {
		g.appr.SyncGen(g.art.Gen())
	} else if g.ITC != nil {
		g.appr.SyncGen(g.ITC.LabelGen())
	}
	g.Stats.Checks++
	tips, region, scanned, health, err := g.windowOn(&ts.win, ts.Out)
	res := Result{TIPs: len(tips), Health: health, OtherCycles: CyclesPerInterception}
	res.DecodeCycles = uint64(float64(scanned) * g.fastDecodeCost())
	g.Stats.BytesScanned += scanned
	if err != nil || health != HealthClean {
		g.resolveDegradedOn(&res, &ts.win, ts.Out, tips, region, err)
	} else if len(tips) >= 2 {
		g.runChecks(&res, tips, region, g.Policy.NaiveFullDecode)
	}
	g.finish(&res)
	return res
}

// noteWindowed is windowOn()'s exit bookkeeping (named method: no
// closure on the hot path).
func (w *winState) noteWindowed() { w.checkedTotal = w.total }

// runChecks applies the hybrid verification to one TIP window: the
// ITC-CFG fast loop with credit assessment, then the slow path when the
// window is suspicious (or unconditionally when forceSlow is set — the
// NaiveFullDecode ablation and degraded-mode full-precision re-checks).
// TIP pairs straddling an overflow seam (TIPRecord.Resync) were never
// adjacent in the real flow and are skipped rather than misjudged.
//
//fg:hotpath the per-TIP fast loop
func (g *Guard) runChecks(res *Result, tips []ipt.TIPRecord, region []byte, forceSlow bool) {
	if forceSlow {
		g.slowPath(res, tips, region)
		return
	}

	res.CheckCycles += uint64(len(tips)) * CyclesPerTIPCheck
	minCount := g.Policy.CredMinCount
	if minCount == 0 {
		minCount = 1
	}
	suspicious := 0
	checked := 0
	for i := 0; i+1 < len(tips); i++ {
		if tips[i].Async || tips[i+1].Resync || tips[i+1].Async {
			// Overflow seam or kernel-performed asynchronous transfer
			// (signal delivery, sigreturn): not a real consecutive pair.
			// An async TARGET is no anchor either — it resumes mid-block,
			// so the hop from it to the next indirect target is not an
			// indirect-branch edge (the slow path's flow walk still
			// verifies that span precisely).
			continue
		}
		checked++
		src, dst, sig := tips[i].IP, tips[i+1].IP, tips[i+1].TNTSig
		if minCount <= 1 {
			// The separate high-credit cache holds count >= 1 edges, so
			// it is only a shortcut under binary labeling.
			if hit, sigOK := g.cacheLookup(src, dst, sig); hit && sigOK {
				g.Stats.CacheHits++
				g.Stats.HighEdges++
				continue
			}
		}
		l := g.lookupEdge(src, dst, sig)
		if !l.Exists {
			// Out of the conservative graph: no legitimate execution can
			// produce this pair (§4.2), so this is a definite violation.
			res.Verdict = VerdictViolation
			res.Reason = g.violationReason(src, dst)
			return
		}
		if l.HighCredit && l.SigMatch && l.Count >= minCount {
			g.Stats.HighEdges++
			continue
		}
		if g.appr.ApprovedEdge(edgeKey{src, dst, sig}) {
			g.Stats.HighEdges++
			g.Stats.CacheHits++
			continue
		}
		g.Stats.LowEdges++
		suspicious++
	}
	// Path-sensitive mode: consecutive edge pairs must have been seen
	// together in training (or approved by a prior slow path).
	if g.Policy.PathSensitive {
		res.CheckCycles += uint64(len(tips)) * CyclesPerTIPCheck / 2
		for i := 0; i+2 < len(tips); i++ {
			if tips[i].Async || tips[i+1].Resync || tips[i+2].Resync ||
				tips[i+1].Async || tips[i+2].Async {
				continue
			}
			a, b, c := tips[i].IP, tips[i+1].IP, tips[i+2].IP
			if g.pathTrained(a, b, c) || g.appr.ApprovedPath(itc.PathKey(a, b, c)) {
				continue
			}
			g.Stats.LowEdges++
			suspicious++
		}
	}
	res.LowCredit = suspicious

	// Credibility assessment (§7.1.1): with CredRatio = 1 any suspicious
	// edge forwards the window to the slow path.
	if float64(checked-suspicious) < g.Policy.CredRatio*float64(checked) {
		g.slowPath(res, tips, region)
	}
}

// violationReason formats the terminal diagnostic. It is deliberately
// not //fg:hotpath: it runs at most once per Check, on the verdict that
// stops the loop, so allocating here is fine — and keeping it a separate
// cold helper keeps fmt-style formatting out of the annotated fast loop.
//
//fg:cold formats the terminal diagnostic at most once per Check
func (g *Guard) violationReason(src, dst uint64) string {
	return "ITC-CFG edge mismatch: " + g.AS.SymbolFor(src) + " -> " + g.AS.SymbolFor(dst)
}

//fg:hotpath
func (g *Guard) fastDecodeCost() float64 {
	if g.Policy.HWDecoder {
		return CyclesPerFastDecodeByte / HWDecoderSpeedup
	}
	return CyclesPerFastDecodeByte
}

//fg:hotpath
func (g *Guard) finish(res *Result) {
	g.Stats.TIPsChecked += uint64(res.TIPs)
	g.Stats.DecodeCycles += res.DecodeCycles
	g.Stats.CheckCycles += res.CheckCycles
	g.Stats.OtherCycles += res.OtherCycles
	g.Stats.SlowCycles += res.SlowCycles
	if res.UsedSlowPath {
		g.Stats.SlowChecks++
	}
	if res.Verdict == VerdictViolation {
		g.Stats.Violations++
	}
}
