package apps

import (
	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
)

// Forkd builds "forkd", the fork-storm workload of the fleet scenarios
// (DESIGN.md §10): a pre-fork worker pool in miniature. The process
// consumes one command byte at a time from stdin and dispatches it
// through a function table (an indirect call per command); an 'F'
// command issues the fork syscall instead, and — because the child
// inherits the parent's stdin cursor — both sides keep processing the
// remaining command stream independently. Every worker ends in a write
// syscall, so each dispatched command crosses a guarded endpoint.
//
// Input bytes: 'F' forks; anything else selects worker (byte & 3).
func Forkd() *App {
	b := asm.NewModule("forkd").Needs("libc")
	b.DataSpace("ch", 8, false)
	b.DataSpace("out", 8, false)
	b.FuncTable("work_tbl", []string{"w0", "w1", "w2", "w3"}, false)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(64)
	main.Label("loop")
	main.AddrOf(r0, "ch")
	main.Movi(r1, 1)
	main.Call("read_stdin")
	main.Cmpi(r0, 1)
	main.Jcc(isa.LT, "fini")
	main.AddrOf(r9, "ch")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, 'F')
	main.Jcc(isa.NE, "work")
	// fork(): the child resumes here with r0 = 0; both sides loop.
	main.Movu64(r7, kernelsim.SysFork)
	main.Syscall()
	main.Jmp("loop")
	main.Label("work")
	main.Mov(r10, r8)
	main.Movi(r5, 3)
	main.And(r10, r5)
	main.Movi(r5, 8)
	main.Mul(r10, r5)
	main.AddrOf(r6, "work_tbl")
	main.Add(r6, r10)
	main.Ld(r6, r6, 0)
	main.Mov(r0, r8)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("fini")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	// Four workers with distinct compute shapes, all ending in a guarded
	// write endpoint. iters and the mixing constant differ per worker so
	// the ITC-CFG sees four distinct flow neighborhoods.
	worker := func(name string, iters int32, mixer uint64) {
		w := b.Func(name, 1, false)
		w.Prologue(32)
		w.Mov(r9, r0)
		w.Movi(r10, iters)
		w.Label("spin")
		w.Cmpi(r10, 0)
		w.Jcc(isa.LE, "emit")
		w.Movu64(r5, mixer)
		w.Mul(r9, r5)
		w.Movi(r5, 13)
		w.Shr(r9, r5)
		w.Addi(r10, -1)
		w.Jmp("spin")
		w.Label("emit")
		w.AddrOf(r5, "out")
		w.Stb(r5, 0, r9)
		w.Movi(r0, 1)
		w.AddrOf(r1, "out")
		w.Movi(r2, 1)
		w.Movu64(r7, kernelsim.SysWrite)
		w.Syscall()
		w.Epilogue()
	}
	worker("w0", 3, 0x9e3779b97f4a7c15)
	worker("w1", 5, 0xff51afd7ed558ccd)
	worker("w2", 7, 0xc4ceb9fe1a85ec53)
	worker("w3", 2, 0x2545f4914f6cdd1d)

	return &App{
		Name:     "forkd",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			n := 4 + scale
			in := make([]byte, 0, n)
			forks := 0
			for i := 0; i < n; i++ {
				// A bounded number of forks: each one doubles the
				// remaining processing, so cap the storm at 2^3 workers
				// per initial process.
				if forks < 3 && i > 0 && r.Intn(n/3+1) == 0 {
					in = append(in, 'F')
					forks++
					continue
				}
				in = append(in, byte('a'+r.Intn(4)))
			}
			return in
		},
	}
}
