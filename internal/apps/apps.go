package apps

import (
	"fmt"
	"math/rand"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// App bundles an executable with its library closure and a deterministic
// workload generator.
type App struct {
	// Name identifies the workload (matches the paper's app names).
	Name string
	// Exec is the executable module.
	Exec *module.Module
	// Libs holds the shared libraries by name (superset of the
	// DT_NEEDED closure).
	Libs map[string]*module.Module
	// VDSO is the virtual DSO (may be nil).
	VDSO *module.Module
	// MakeInput generates a deterministic stdin workload: scale grows
	// the run roughly linearly, seed varies content.
	MakeInput func(scale int, seed int64) []byte
	// Category groups apps for the Figure 5 panels: "server",
	// "utility", "spec".
	Category string
}

// Spawn creates a process running the app on the given kernel.
func (a *App) Spawn(k *kernelsim.Kernel, stdin []byte) (*kernelsim.Process, error) {
	return k.Spawn(a.Name, a.Exec, a.Libs, a.VDSO, stdin)
}

// Load maps the app into a fresh address space without a kernel (static
// analysis use).
func (a *App) Load() (*module.AddressSpace, error) {
	return module.Load(a.Exec, a.Libs, a.VDSO)
}

// rng returns a deterministic generator for workload synthesis.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Servers returns the four server workloads of Table 4 / Figure 5(a).
func Servers() []*App {
	return []*App{Nginx(), Vsftpd(), OpenSSH(), Exim()}
}

// Utilities returns the Figure 5(b) utility workloads.
func Utilities() []*App {
	return []*App{Tar(), Make(), SCP(), DD()}
}

// All returns every workload: servers, utilities, and the SPEC-like
// kernels.
func All() []*App {
	out := Servers()
	out = append(out, Utilities()...)
	out = append(out, SpecApps()...)
	return out
}

// ByName finds a workload by its paper name.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	if name == "vulnd" {
		return Vulnd(), nil
	}
	if name == "forkd" {
		return Forkd(), nil
	}
	if name == "signald" {
		return Signald(), nil
	}
	if name == "threadd" {
		return Threadd(), nil
	}
	if name == "transcoded" {
		return Transcoded(), nil
	}
	return nil, fmt.Errorf("apps: unknown app %q", name)
}

// --- shared assembly idioms -------------------------------------------------

// emitReadLine defines read_line(buf r0, max r1) -> n: reads stdin one
// byte at a time up to a newline (excluded) or max, NUL-terminates, and
// returns the length, or -1 at EOF with nothing read.
func emitReadLine(b *asm.Builder) {
	f := b.Func("read_line", 2, false)
	f.Prologue(32)
	f.St(fp, -8, r0)  // buf
	f.St(fp, -16, r1) // max
	f.Movi(r11, 0)    // count
	f.Label("loop")
	f.Ld(r8, fp, -16)
	f.Cmp(r11, r8)
	f.Jcc(isa.GE, "done")
	// read(0, buf+count, 1)
	f.Movu64(r7, kernelsim.SysRead)
	f.Movi(r0, 0)
	f.Ld(r1, fp, -8)
	f.Add(r1, r11)
	f.Movi(r2, 1)
	f.Syscall()
	f.Cmpi(r0, 1)
	f.Jcc(isa.LT, "eof")
	f.Ld(r1, fp, -8)
	f.Add(r1, r11)
	f.Ldb(r8, r1, 0)
	f.Cmpi(r8, '\n')
	f.Jcc(isa.EQ, "done")
	f.Addi(r11, 1)
	f.Jmp("loop")
	f.Label("eof")
	f.Cmpi(r11, 0)
	f.Jcc(isa.GT, "done")
	f.Movi(r0, -1)
	f.Epilogue()
	f.Label("done")
	// NUL-terminate.
	f.Ld(r1, fp, -8)
	f.Add(r1, r11)
	f.Movi(r8, 0)
	f.Stb(r1, 0, r8)
	f.Mov(r0, r11)
	f.Epilogue()
}

// emitRenderBody defines render_body(dst r0, n r1, seed r2) -> checksum:
// fills dst with n pseudo-random printable bytes (LCG seeded by seed) and
// returns a running checksum — the servers' response-generation work.
func emitRenderBody(b *asm.Builder) {
	f := b.Func("render_body", 3, false)
	f.Mov(r9, r0)  // cursor
	f.Mov(r10, r2) // lcg state
	f.Movi(r11, 0) // checksum
	f.Movi(r6, 0)  // i
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Movu64(r8, 1103515245)
	f.Mul(r10, r8)
	f.Addi(r10, 12345)
	f.Mov(r8, r10)
	f.Movi(r5, 16)
	f.Shr(r8, r5)
	f.Movi(r5, 26)
	f.Mod(r8, r5)
	f.Addi(r8, 'A')
	f.Stb(r9, 0, r8)
	f.Add(r11, r8)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Mov(r0, r11)
	f.Ret()
}

// emitExitCall defines do_exit(code r0): exits via libc (PLT crossing).
func emitExitCall(b *asm.Builder) {
	f := b.Func("do_exit", 1, false)
	f.Call("exit")
	f.Halt() // unreachable
}
