package apps_test

import (
	"errors"
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/asm"
	"flowguard/internal/cpu"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// callLib builds a throwaway executable that loads up to three arguments
// and calls one library function, returning r0.
func callLib(t *testing.T, fn string, args ...uint64) uint64 {
	t.Helper()
	b := asm.NewModule("drv").Needs("libc", "libcrypt", "libz", "libfmt", "libm", "libio", "libutil")
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	for i, a := range args {
		f.Movu64(isa.Reg(i), a)
	}
	f.Call(fn)
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, apps.StdLibs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	if _, err := c.Run(2_000_000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatalf("call %s: %v (pc=%#x)", fn, err, c.PC)
	}
	return c.Regs[isa.R0]
}

func TestLibMSemantics(t *testing.T) {
	for _, tc := range []struct {
		x, want uint64
	}{{0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4}, {1 << 20, 1 << 10}, {99980001, 9999}} {
		if got := callLib(t, "isqrt", tc.x); got != tc.want {
			t.Errorf("isqrt(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
	for _, tc := range []struct {
		a, b, want uint64
	}{{12, 18, 6}, {17, 5, 1}, {0, 9, 9}, {9, 0, 9}, {48, 36, 12}} {
		if got := callLib(t, "gcd", tc.a, tc.b); got != tc.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	for _, tc := range []struct {
		b, e, m, want uint64
	}{{2, 10, 1000, 24}, {5, 0, 7, 1}, {3, 4, 5, 1}, {7, 13, 11, 2}, {2, 3, 0, 0}} {
		if got := callLib(t, "powmod", tc.b, tc.e, tc.m); got != tc.want {
			t.Errorf("powmod(%d,%d,%d) = %d, want %d", tc.b, tc.e, tc.m, got, tc.want)
		}
	}
	for _, tc := range []struct {
		x, want uint64
	}{{0, 0}, {1, 0}, {2, 1}, {255, 7}, {256, 8}} {
		if got := callLib(t, "ilog2", tc.x); got != tc.want {
			t.Errorf("ilog2(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestLibUtilSemantics(t *testing.T) {
	for _, tc := range []struct {
		x, want uint64
	}{{0, 0}, {1, 1}, {0b1011, 3}, {^uint64(0), 64}} {
		if got := callLib(t, "popcount", tc.x); got != tc.want {
			t.Errorf("popcount(%#b) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

// TestLibUtilFold drives the comparator-table fold over an in-memory
// array.
func TestLibUtilFold(t *testing.T) {
	for which, want := range map[uint64]uint64{0: 3, 1: 99} {
		b := asm.NewModule("drv").Needs("libutil")
		b.DataWords("arr", []uint64{42, 3, 99, 7}, false)
		f := b.Func("main", 0, true)
		b.SetEntry("main")
		f.AddrOf(isa.R0, "arr")
		f.Movi(isa.R1, 4)
		f.Movu64(isa.R2, which)
		f.Call("fold")
		f.Halt()
		m, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		as, err := module.Load(m, apps.StdLibs(), nil)
		if err != nil {
			t.Fatal(err)
		}
		c := cpu.New(as)
		if _, err := c.Run(100000); !errors.Is(err, cpu.ErrHalted) {
			t.Fatal(err)
		}
		if got := c.Regs[isa.R0]; got != want {
			t.Errorf("fold(which=%d) = %d, want %d", which, got, want)
		}
	}
}

// TestLibUtilBitset exercises set/test through memory.
func TestLibUtilBitset(t *testing.T) {
	b := asm.NewModule("drv").Needs("libutil")
	b.DataSpace("bits", 32, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	for _, bit := range []int32{0, 63, 64, 100} {
		f.AddrOf(isa.R0, "bits")
		f.Movi(isa.R1, bit)
		f.Call("bs_set")
	}
	// r0 = test(100)<<1 | test(99)
	f.AddrOf(isa.R0, "bits")
	f.Movi(isa.R1, 99)
	f.Call("bs_test")
	f.Push(isa.R0)
	f.AddrOf(isa.R0, "bits")
	f.Movi(isa.R1, 100)
	f.Call("bs_test")
	f.Movi(isa.R5, 1)
	f.Shl(isa.R0, isa.R5)
	f.Pop(isa.R5)
	f.Or(isa.R0, isa.R5)
	f.Halt()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	as, err := module.Load(m, apps.StdLibs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(as)
	if _, err := c.Run(100000); !errors.Is(err, cpu.ErrHalted) {
		t.Fatal(err)
	}
	if c.Regs[isa.R0] != 0b10 {
		t.Errorf("bitset test word = %#b, want 0b10 (bit 100 set, 99 clear)", c.Regs[isa.R0])
	}
}

// TestLibIOBuffering: small writes coalesce into one flush.
func TestLibIOBuffering(t *testing.T) {
	b := asm.NewModule("drv").Needs("libio", "libc")
	b.DataBytes("chunk", []byte("abcdefgh"), false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.Movi(isa.R0, 1)
	f.Call("io_setfd")
	for i := 0; i < 5; i++ {
		f.AddrOf(isa.R0, "chunk")
		f.Movi(isa.R1, 8)
		f.Call("io_write")
	}
	f.Call("io_flush")
	f.Movu64(isa.R7, 60) // exit
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// Needs a kernel for the write syscall.
	out := runDriver(t, m)
	want := "abcdefghabcdefghabcdefghabcdefghabcdefgh"
	if string(out) != want {
		t.Errorf("buffered output = %q, want %q", out, want)
	}
}

// TestLibIOHex checks the hex encoder.
func TestLibIOHex(t *testing.T) {
	b := asm.NewModule("drv").Needs("libio", "libc")
	b.DataBytes("src", []byte{0x00, 0x0f, 0xa5, 0xff}, false)
	b.DataSpace("dst", 16, false)
	f := b.Func("main", 0, true)
	b.SetEntry("main")
	f.AddrOf(isa.R0, "dst")
	f.AddrOf(isa.R1, "src")
	f.Movi(isa.R2, 4)
	f.Call("hex_encode")
	// write(1, dst, r0)
	f.Mov(isa.R2, isa.R0)
	f.Movu64(isa.R7, 1)
	f.Movi(isa.R0, 1)
	f.AddrOf(isa.R1, "dst")
	f.Syscall()
	f.Movu64(isa.R7, 60)
	f.Movi(isa.R0, 0)
	f.Syscall()
	m, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	out := runDriver(t, m)
	if string(out) != "000fa5ff" {
		t.Errorf("hex = %q, want 000fa5ff", out)
	}
}

// runDriver executes a driver module under a kernel and returns stdout.
func runDriver(t *testing.T, m *module.Module) []byte {
	t.Helper()
	k := kernelsim.New()
	p, err := k.Spawn("drv", m, apps.StdLibs(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited {
		t.Fatalf("driver: %v (fault %v)", st, st.FaultErr)
	}
	return p.Stdout
}
