package apps

import (
	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
)

// sigUSR is the signal number signald plays with (SIGUSR1's slot).
const sigUSR = 10

// Signald builds "signald", the signal-delivery workload of the
// preemptive-world scenarios (DESIGN.md §11): it registers a handler and
// then processes stdin one command byte at a time; an 'S' command raises
// the signal at itself via kill, so the kernel interrupts the flow
// mid-window — handler entry and the sigreturn restore are both
// kernel-performed transfers the tracer renders as async FUP+TIP edges.
// The handler crosses a guarded write endpoint before returning through
// a raw sigreturn (no ret: the restore IS the control transfer), so the
// checker sees windows containing async edges on both sides of a check.
//
// Input bytes: 'S' self-signals; anything else selects a worker (byte & 1).
func Signald() *App {
	b := asm.NewModule("signald").Needs("libc")
	b.DataSpace("ch", 8, false)
	b.DataSpace("out", 8, false)
	b.DataSpace("sigcnt", 8, false)
	b.FuncTable("sig_tbl", []string{"on_sig"}, false)
	b.FuncTable("work_tbl", []string{"w0", "w1"}, false)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(64)
	// sigaction(sigUSR, on_sig): handler address out of the function
	// table (the only relocation idiom the assembler offers).
	main.AddrOf(r6, "sig_tbl")
	main.Ld(r1, r6, 0)
	main.Movi(r0, sigUSR)
	main.Movu64(r7, kernelsim.SysSigaction)
	main.Syscall()
	main.Label("loop")
	main.Movu64(r7, kernelsim.SysRead)
	main.Movi(r0, 0)
	main.AddrOf(r1, "ch")
	main.Movi(r2, 1)
	main.Syscall()
	main.Cmpi(r0, 1)
	main.Jcc(isa.LT, "fini")
	main.AddrOf(r9, "ch")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, 'S')
	main.Jcc(isa.NE, "work")
	// kill(0, sigUSR): the handler runs before kill's return value is
	// even looked at; sigreturn resumes right here.
	main.Movi(r0, 0)
	main.Movi(r1, sigUSR)
	main.Movu64(r7, kernelsim.SysKill)
	main.Syscall()
	main.Jmp("loop")
	main.Label("work")
	main.Mov(r10, r8)
	main.Movi(r5, 1)
	main.And(r10, r5)
	main.Movi(r5, 8)
	main.Mul(r10, r5)
	main.AddrOf(r6, "work_tbl")
	main.Add(r6, r10)
	main.Ld(r6, r6, 0)
	main.Mov(r0, r8)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("fini")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	// on_sig(signo r0): count the delivery, cross a write endpoint while
	// the interrupted context sits on the stack, then restore it with a
	// raw sigreturn — no ret, no epilogue; the kernel performs the exit
	// transfer (forging the frame instead is exactly SROP).
	sig := b.Func("on_sig", 1, false)
	sig.AddrOf(r9, "sigcnt")
	sig.Ld(r8, r9, 0)
	sig.Addi(r8, 1)
	sig.St(r9, 0, r8)
	sig.Movi(r0, 1)
	sig.AddrOf(r1, "sigcnt")
	sig.Movi(r2, 1)
	sig.Movu64(r7, kernelsim.SysWrite)
	sig.Syscall()
	sig.Movu64(r7, kernelsim.SysSigreturn)
	sig.Syscall()
	sig.Halt() // unreachable: sigreturn never comes back

	// Two workers with distinct compute shapes, both ending in a guarded
	// write endpoint, so benign runs exercise the same dispatch pattern
	// the other server workloads do.
	worker := func(name string, iters int32, mixer uint64) {
		w := b.Func(name, 1, false)
		w.Prologue(32)
		w.Mov(r9, r0)
		w.Movi(r10, iters)
		w.Label("spin")
		w.Cmpi(r10, 0)
		w.Jcc(isa.LE, "emit")
		w.Movu64(r5, mixer)
		w.Mul(r9, r5)
		w.Movi(r5, 11)
		w.Shr(r9, r5)
		w.Addi(r10, -1)
		w.Jmp("spin")
		w.Label("emit")
		w.AddrOf(r5, "out")
		w.Stb(r5, 0, r9)
		w.Movi(r0, 1)
		w.AddrOf(r1, "out")
		w.Movi(r2, 1)
		w.Movu64(r7, kernelsim.SysWrite)
		w.Syscall()
		w.Epilogue()
	}
	worker("w0", 4, 0x9e3779b97f4a7c15)
	worker("w1", 6, 0xc4ceb9fe1a85ec53)

	return &App{
		Name:     "signald",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			n := 4 + scale
			in := make([]byte, 0, n)
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					in = append(in, 'S')
					continue
				}
				in = append(in, byte('a'+r.Intn(2)))
			}
			return in
		},
	}
}
