package apps_test

import (
	"testing"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

const ctlDefault = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// TestAllAppsRunCleanly executes every workload at a small scale and
// checks for a clean exit with output.
func TestAllAppsRunCleanly(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			k := kernelsim.New()
			p, err := a.Spawn(k, a.MakeInput(3, 42))
			if err != nil {
				t.Fatalf("spawn: %v", err)
			}
			st, err := k.Run(p, 80_000_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !st.Exited {
				t.Fatalf("status = %v (fault: %v), want clean exit", st, st.FaultErr)
			}
			if len(p.Stdout) == 0 {
				t.Error("no output produced")
			}
			t.Logf("%s: %d instrs, %d syscalls, %d bytes out",
				a.Name, p.CPU.Instrs, k.SyscallCount, len(p.Stdout))
		})
	}
}

// TestAppsConservativeCFG is the suite-wide §4.1 guarantee: every edge
// any workload executes must be present in its O-CFG, and every
// consecutive TIP pair must be an ITC-CFG edge (§4.2).
func TestAppsConservativeCFG(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite CFG validation is slow")
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			k := kernelsim.New()
			p, err := a.Spawn(k, a.MakeInput(2, 7))
			if err != nil {
				t.Fatal(err)
			}
			g, err := cfg.Build(p.AS)
			if err != nil {
				t.Fatal(err)
			}
			ig := itc.FromCFG(g)

			tr := ipt.NewTracer(ipt.NewToPA(64 << 20))
			if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
				t.Fatal(err)
			}
			bad := 0
			check := trace.SinkFunc(func(br trace.Branch) {
				if bad < 5 && !g.ContainsEdge(br.Source, br.Target, br.Class) {
					bad++
					t.Errorf("executed edge not in O-CFG: %v %s -> %s",
						br.Class, p.AS.SymbolFor(br.Source), p.AS.SymbolFor(br.Target))
				}
			})
			p.CPU.Branch = trace.MultiSink{tr, check}
			st, err := k.Run(p, 80_000_000)
			if err != nil || !st.Exited {
				t.Fatalf("run: %v %v", st, err)
			}
			tr.Flush()

			evs, err := ipt.DecodeFast(tr.Out.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			tips := ipt.ExtractTIPs(evs)
			if len(tips) < 2 {
				// dd is nearly indirect-free by design; nothing to pair.
				t.Logf("%s: only %d TIPs traced", a.Name, len(tips))
				return
			}
			misses := 0
			for i := 0; i+1 < len(tips); i++ {
				if !ig.HasEdge(tips[i].IP, tips[i+1].IP) {
					if misses < 5 {
						t.Errorf("consecutive TIPs not an ITC edge: %s -> %s",
							p.AS.SymbolFor(tips[i].IP), p.AS.SymbolFor(tips[i+1].IP))
					}
					misses++
				}
			}
			t.Logf("%s: O-CFG %v, %v, %d TIPs", a.Name, g, ig, len(tips))
		})
	}
}

// TestVDSOInterposed verifies the loader preference end to end: the
// apps' gettimeofday binding lands in the VDSO, not libc.
func TestVDSOInterposed(t *testing.T) {
	a := apps.Nginx()
	as, err := a.Load()
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := as.ResolveSymbol("gettimeofday")
	if !ok {
		t.Fatal("gettimeofday unresolved")
	}
	if as.VDSO == nil || !as.VDSO.ContainsCode(addr) {
		t.Errorf("gettimeofday bound to %s, want the VDSO", as.SymbolFor(addr))
	}
}

// TestVulndBenignMatchesNginxShape runs vulnd on benign input: it must
// behave like a normal server.
func TestVulndBenignMatchesNginxShape(t *testing.T) {
	a := apps.Vulnd()
	k := kernelsim.New()
	p, err := a.Spawn(k, []byte("G /index\nH /x\nP 32\n"+string(make([]byte, 32))))
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Run(p, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exited {
		t.Fatalf("benign vulnd: %v (fault %v)", st, st.FaultErr)
	}
	if len(p.Stdout) == 0 {
		t.Error("no responses")
	}
}

// TestWorkloadDeterminism pins MakeInput determinism (experiments must
// be reproducible run to run).
func TestWorkloadDeterminism(t *testing.T) {
	for _, a := range apps.All() {
		in1 := a.MakeInput(5, 99)
		in2 := a.MakeInput(5, 99)
		if string(in1) != string(in2) {
			t.Errorf("%s: MakeInput not deterministic", a.Name)
		}
		if len(in1) == 0 {
			t.Errorf("%s: empty workload", a.Name)
		}
	}
}

// TestByName covers the registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"nginx", "vsftpd", "openssh", "exim", "tar", "dd", "make", "scp", "h264ref", "vulnd"} {
		if _, err := apps.ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := apps.ByName("nope"); err == nil {
		t.Error("ByName accepted unknown app")
	}
}

// TestVDSOAppearsInEximTraces: exim's delivery timestamps call
// gettimeofday, which the loader binds to the VDSO; the live trace must
// therefore contain TIP packets landing in VDSO code (the §4.1 VDSO
// handling is exercised at runtime, not just at bind time).
func TestVDSOAppearsInEximTraces(t *testing.T) {
	a, err := apps.ByName("exim")
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	p, err := a.Spawn(k, a.MakeInput(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	tr := ipt.NewTracer(ipt.NewToPA(32 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlDefault); err != nil {
		t.Fatal(err)
	}
	p.CPU.Branch = tr
	if st, err := k.Run(p, 80_000_000); err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	inVDSO := 0
	for _, r := range ipt.ExtractTIPs(evs) {
		if p.AS.VDSO != nil && p.AS.VDSO.ContainsCode(r.IP) {
			inVDSO++
		}
	}
	if inVDSO == 0 {
		t.Fatal("no TIP packets landed in the VDSO")
	}
}

// TestTarArchiveContents: the buffered writer must deliver every header
// and data byte into the archive file, in order.
func TestTarArchiveContents(t *testing.T) {
	a, err := apps.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	k := kernelsim.New()
	input := a.MakeInput(3, 5)
	p, err := a.Spawn(k, input)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := k.Run(p, 80_000_000); err != nil || !st.Exited {
		t.Fatalf("run: %v %v", st, err)
	}
	archive, ok := k.FileContents("out.tar")
	if !ok || len(archive) == 0 {
		t.Fatalf("archive missing or empty (ok=%v, %d bytes)", ok, len(archive))
	}
	// The archive must contain every input data byte (headers add more).
	dataBytes := 0
	for _, line := range []byte(input) {
		_ = line
	}
	// Input = 3 entries of (name\n size\n data); the data sizes are the
	// numbers on the size lines.
	rest := input
	for i := 0; i < 3; i++ {
		nl := indexByte(rest, '\n')
		rest = rest[nl+1:]
		nl = indexByte(rest, '\n')
		n := 0
		for _, c := range rest[:nl] {
			n = n*10 + int(c-'0')
		}
		rest = rest[nl+1+n:]
		dataBytes += n
	}
	if len(archive) < dataBytes {
		t.Errorf("archive %d bytes < %d data bytes", len(archive), dataBytes)
	}
}

func indexByte(p []byte, b byte) int {
	for i, x := range p {
		if x == b {
			return i
		}
	}
	return -1
}
