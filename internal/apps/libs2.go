package apps

import (
	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// LibM builds the math-library analogue: integer square root, gcd,
// modular exponentiation (the servers' key-exchange arithmetic), and
// bit-length.
func LibM() *module.Module {
	b := asm.NewModule("libm")

	// isqrt(x r0) -> floor(sqrt(x)): Newton iteration.
	f := b.Func("isqrt", 1, true)
	f.Cmpi(r0, 2)
	f.Jcc(isa.LT, "tiny")
	f.Mov(r9, r0)  // x
	f.Mov(r10, r0) // guess
	f.Movi(r8, 1)
	f.Shr(r10, r8) // x/2
	f.Label("iter")
	f.Mov(r11, r9)
	f.Div(r11, r10) // x/guess
	f.Add(r11, r10)
	f.Movi(r8, 1)
	f.Shr(r11, r8) // next = (guess + x/guess)/2
	f.Cmp(r11, r10)
	f.Jcc(isa.GE, "done")
	f.Mov(r10, r11)
	f.Jmp("iter")
	f.Label("done")
	f.Mov(r0, r10)
	f.Ret()
	f.Label("tiny")
	f.Ret() // 0 -> 0, 1 -> 1

	// gcd(a r0, b r1) -> g: Euclid.
	f = b.Func("gcd", 2, true)
	f.Label("loop")
	f.Cmpi(r1, 0)
	f.Jcc(isa.EQ, "done")
	f.Mov(r8, r0)
	f.Mod(r8, r1)
	f.Mov(r0, r1)
	f.Mov(r1, r8)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// powmod(base r0, exp r1, mod r2) -> base^exp % mod: square and
	// multiply — the Diffie-Hellman-style arithmetic sshd's key exchange
	// uses.
	f = b.Func("powmod", 3, true)
	f.Cmpi(r2, 0)
	f.Jcc(isa.NE, "ok")
	f.Movi(r0, 0)
	f.Ret()
	f.Label("ok")
	f.Mov(r9, r0)  // base
	f.Mod(r9, r2)  // reduce
	f.Mov(r10, r1) // exp
	f.Movi(r0, 1)  // result
	f.Label("loop")
	f.Cmpi(r10, 0)
	f.Jcc(isa.EQ, "done")
	f.Mov(r8, r10)
	f.Movi(r5, 1)
	f.And(r8, r5)
	f.Cmpi(r8, 0)
	f.Jcc(isa.EQ, "even")
	f.Mul(r0, r9)
	f.Mod(r0, r2)
	f.Label("even")
	f.Mul(r9, r9)
	f.Mod(r9, r2)
	f.Movi(r5, 1)
	f.Shr(r10, r5)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// ilog2(x r0) -> bit length - 1 (0 for x <= 1).
	f = b.Func("ilog2", 1, true)
	f.Movi(r9, 0)
	f.Label("loop")
	f.Cmpi(r0, 1)
	f.Jcc(isa.LE, "done")
	f.Movi(r5, 1)
	f.Shr(r0, r5)
	f.Addi(r9, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Mov(r0, r9)
	f.Ret()

	return mustAssemble(b)
}

// LibIO builds the buffered-I/O library analogue: a write buffer over
// the raw fd syscalls (fewer, larger writes — how stdio batches output),
// plus a simple hex dumper. Depends on libc through the PLT.
func LibIO() *module.Module {
	b := asm.NewModule("libio").Needs("libc")
	const bufCap = 4096
	b.DataSpace("iobuf", bufCap, false)
	b.DataWords("iolen", []uint64{0}, false)
	b.DataWords("iofd", []uint64{1}, false)

	// io_setfd(fd r0): direct buffered output to fd.
	f := b.Func("io_setfd", 1, true)
	f.AddrOf(r9, "iofd")
	f.St(r9, 0, r0)
	f.Ret()

	// io_flush() -> n: write the buffer out via libc write_fd.
	f = b.Func("io_flush", 0, true)
	f.Prologue(16)
	f.AddrOf(r9, "iolen")
	f.Ld(r2, r9, 0)
	f.Cmpi(r2, 0)
	f.Jcc(isa.EQ, "empty")
	f.AddrOf(r9, "iofd")
	f.Ld(r0, r9, 0)
	f.AddrOf(r1, "iobuf")
	f.Call("write_fd")
	f.AddrOf(r9, "iolen")
	f.Movi(r8, 0)
	f.St(r9, 0, r8)
	f.Epilogue()
	f.Label("empty")
	f.Movi(r0, 0)
	f.Epilogue()

	// io_write(buf r0, n r1) -> n: append to the buffer, flushing when
	// full.
	f = b.Func("io_write", 2, true)
	f.Prologue(32)
	f.St(fp, -8, r0)
	f.St(fp, -16, r1)
	// Flush if it would overflow.
	f.AddrOf(r9, "iolen")
	f.Ld(r8, r9, 0)
	f.Add(r8, r1)
	f.Cmpi(r8, bufCap)
	f.Jcc(isa.LE, "fits")
	f.Call("io_flush")
	f.Label("fits")
	// Oversized writes go straight through.
	f.Ld(r1, fp, -16)
	f.Cmpi(r1, bufCap)
	f.Jcc(isa.LE, "buffer")
	f.AddrOf(r9, "iofd")
	f.Ld(r0, r9, 0)
	f.Ld(r1, fp, -8)
	f.Ld(r2, fp, -16)
	f.Call("write_fd")
	f.Epilogue()
	f.Label("buffer")
	f.AddrOf(r0, "iobuf")
	f.AddrOf(r9, "iolen")
	f.Ld(r8, r9, 0)
	f.Add(r0, r8)
	f.Ld(r1, fp, -8)
	f.Ld(r2, fp, -16)
	f.Call("memcpy")
	f.AddrOf(r9, "iolen")
	f.Ld(r8, r9, 0)
	f.Ld(r5, fp, -16)
	f.Add(r8, r5)
	f.St(r9, 0, r8)
	f.Ld(r0, fp, -16)
	f.Epilogue()

	// hex_encode(dst r0, src r1, n r2) -> 2n: lowercase hex.
	f = b.Func("hex_encode", 3, true)
	f.Mov(r9, r0)  // dst
	f.Mov(r10, r1) // src
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r10, 0)
	f.Mov(r11, r8)
	f.Movi(r5, 4)
	f.Shr(r11, r5)
	f.Call("hexdigit")
	f.Mov(r5, r0)
	f.Stb(r9, 0, r5)
	f.Movi(r5, 15)
	f.And(r8, r5)
	f.Mov(r11, r8)
	f.Call("hexdigit")
	f.Stb(r9, 1, r0)
	f.Addi(r9, 2)
	f.Addi(r10, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Movi(r5, 2)
	f.Mul(r6, r5)
	f.Mov(r0, r6)
	f.Ret()

	// hexdigit(v r11) -> char r0 (internal helper with a register-based
	// contract; declared arity 0 because it reads no argument register).
	f = b.Func("hexdigit", 0, false)
	f.Mov(r0, r11)
	f.Cmpi(r0, 10)
	f.Jcc(isa.GE, "alpha")
	f.Addi(r0, '0')
	f.Ret()
	f.Label("alpha")
	f.Addi(r0, 'a'-10)
	f.Ret()

	return mustAssemble(b)
}

// LibUtil builds the utility-library analogue: bitsets and array
// helpers, including an indirect min/max fold through a comparator table.
func LibUtil() *module.Module {
	b := asm.NewModule("libutil")

	// bs_set(bits r0, i r1): set bit i.
	f := b.Func("bs_set", 2, true)
	f.Mov(r8, r1)
	f.Movi(r5, 6)
	f.Shr(r8, r5) // word index
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.Add(r0, r8)
	f.Movi(r5, 63)
	f.And(r1, r5)
	f.Movi(r8, 1)
	f.Shl(r8, r1)
	f.Ld(r9, r0, 0)
	f.Or(r9, r8)
	f.St(r0, 0, r9)
	f.Ret()

	// bs_test(bits r0, i r1) -> 0/1.
	f = b.Func("bs_test", 2, true)
	f.Mov(r8, r1)
	f.Movi(r5, 6)
	f.Shr(r8, r5)
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.Add(r0, r8)
	f.Ld(r9, r0, 0)
	f.Movi(r5, 63)
	f.And(r1, r5)
	f.Shr(r9, r1)
	f.Movi(r5, 1)
	f.And(r9, r5)
	f.Mov(r0, r9)
	f.Ret()

	// popcount(x r0) -> bits set.
	f = b.Func("popcount", 1, true)
	f.Movi(r9, 0)
	f.Label("loop")
	f.Cmpi(r0, 0)
	f.Jcc(isa.EQ, "done")
	f.Mov(r8, r0)
	f.Movi(r5, 1)
	f.And(r8, r5)
	f.Add(r9, r8)
	f.Movi(r5, 1)
	f.Shr(r0, r5)
	f.Jmp("loop")
	f.Label("done")
	f.Mov(r0, r9)
	f.Ret()

	// Comparator pair for the fold (address-taken).
	f = b.Func("pick_min", 2, true)
	f.Cmp(r0, r1)
	f.Jcc(isa.LE, "keep")
	f.Mov(r0, r1)
	f.Label("keep")
	f.Ret()
	f = b.Func("pick_max", 2, true)
	f.Cmp(r0, r1)
	f.Jcc(isa.GE, "keep")
	f.Mov(r0, r1)
	f.Label("keep")
	f.Ret()
	b.FuncTable("fold_tbl", []string{"pick_min", "pick_max"}, true)

	// fold(base r0, n r1, which r2) -> extremum via the comparator table
	// (an in-library indirect-call site).
	f = b.Func("fold", 3, true)
	f.Prologue(40)
	f.St(fp, -8, r0)
	f.St(fp, -16, r1)
	f.Movi(r5, 1)
	f.And(r2, r5)
	f.Movi(r5, 8)
	f.Mul(r2, r5)
	f.AddrOf(r9, "fold_tbl")
	f.Add(r9, r2)
	f.Ld(r9, r9, 0)
	f.St(fp, -24, r9) // comparator
	f.Ld(r9, fp, -8)
	f.Ld(r0, r9, 0) // acc = a[0]
	f.Movi(r11, 1)
	f.Label("loop")
	f.Ld(r8, fp, -16)
	f.Cmp(r11, r8)
	f.Jcc(isa.GE, "done")
	f.St(fp, -32, r11)
	f.St(fp, -40, r0)
	f.Ld(r9, fp, -8)
	f.Mov(r8, r11)
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.Add(r9, r8)
	f.Ld(r1, r9, 0)
	f.Ld(r0, fp, -40)
	f.Ld(r6, fp, -24)
	f.CallR(r6)
	f.Ld(r11, fp, -32)
	f.Addi(r11, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Epilogue()

	return mustAssemble(b)
}
