// Package apps provides the synthetic workload suite of the evaluation
// (§7): server daemons modeled on nginx/vsftpd/OpenSSH/exim, Linux
// utilities modeled on tar/make/scp/dd, and twelve SPEC-CPU-2006-like
// kernels — all assembled for the synthetic ISA against a shared set of
// libraries (libc, libcrypt, libz, libfmt) and a VDSO, so that every
// CFI-relevant structural feature of the paper's targets is present:
// dispatch tables (indirect calls), deep call/return chains, PLT-crossing
// library calls, VDSO-accelerated gettimeofday, tail calls and
// syscall-heavy request loops.
//
// Network servers consume their byte streams from stdin, exactly as the
// paper runs them under preeny's desock for fuzzing (§7).
package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
)

// Register-name shorthands keep the assembly readable.
const (
	r0  = isa.R0
	r1  = isa.R1
	r2  = isa.R2
	r3  = isa.R3
	r4  = isa.R4
	r5  = isa.R5
	r6  = isa.R6
	r7  = isa.R7
	r8  = isa.R8
	r9  = isa.R9
	r10 = isa.R10
	r11 = isa.R11
	r12 = isa.R12
	r13 = isa.R13
	fp  = isa.FP
	sp  = isa.SP
)

// mustAssemble panics on assembler errors: the app sources are static
// program text, so a failure is a build bug, not a runtime condition.
func mustAssemble(b *asm.Builder) *module.Module {
	m, err := b.Assemble()
	if err != nil {
		panic(fmt.Sprintf("apps: %v", err))
	}
	return m
}

// LibC builds the shared C-library analogue. Its exported surface:
//
//	read_stdin(buf, max) -> n        write_out(buf, n) -> n
//	open_file(path) -> fd            write_fd(fd, buf, n) -> n
//	memcpy(dst, src, n) -> dst       memset(dst, v, n) -> dst
//	strlen(s) -> n                   strcmp(a, b) -> -1/0/1
//	atoi(s) -> v                     u2dec(buf, v) -> len
//	hash_fnv(buf, n) -> h            qsort(base, n, cmp)
//	cmp_u64(a, b) -> -1/0/1          malloc(n) -> p
//	free(p)                          raw_syscall(no, a, b, c) -> r
//	spawn(path) -> r  (execve)       exit(code)
//	gettimeofday(buf) -> 0           ctx_restore / ctx_save (coroutines)
//	puts(s) -> n
//
// ctx_restore is the setcontext analogue: it resumes a register frame
// previously pushed on the stack (the classic gadget source real
// exploits lean on in glibc).
func LibC() *module.Module {
	b := asm.NewModule("libc")

	// read_stdin(buf r0, max r1) -> n
	f := b.Func("read_stdin", 2, true)
	f.Mov(r2, r1)
	f.Mov(r1, r0)
	f.Movi(r0, 0)
	f.Movu64(r7, kernelsim.SysRead)
	f.Syscall()
	f.Ret()

	// write_out(buf r0, n r1) -> n
	f = b.Func("write_out", 2, true)
	f.Mov(r2, r1)
	f.Mov(r1, r0)
	f.Movi(r0, 1)
	f.Movu64(r7, kernelsim.SysWrite)
	f.Syscall()
	f.Ret()

	// write_fd(fd r0, buf r1, n r2) -> n
	f = b.Func("write_fd", 3, true)
	f.Movu64(r7, kernelsim.SysWrite)
	f.Syscall()
	f.Ret()

	// open_file(path r0) -> fd
	f = b.Func("open_file", 1, true)
	f.Movu64(r7, kernelsim.SysOpen)
	f.Syscall()
	f.Ret()

	// close_fd(fd r0)
	f = b.Func("close_fd", 1, true)
	f.Movu64(r7, kernelsim.SysClose)
	f.Syscall()
	f.Ret()

	// memcpy(dst r0, src r1, n r2) -> dst
	f = b.Func("memcpy", 3, true)
	f.Mov(r9, r0)
	f.Mov(r10, r1)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r10, 0)
	f.Stb(r9, 0, r8)
	f.Addi(r9, 1)
	f.Addi(r10, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// memset(dst r0, v r1, n r2) -> dst
	f = b.Func("memset", 3, true)
	f.Mov(r9, r0)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "done")
	f.Stb(r9, 0, r1)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// strlen(s r0) -> n
	f = b.Func("strlen", 1, true)
	f.Mov(r9, r0)
	f.Movi(r0, 0)
	f.Label("loop")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, 0)
	f.Jcc(isa.EQ, "done")
	f.Addi(r9, 1)
	f.Addi(r0, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// strcmp(a r0, b r1) -> -1/0/1
	f = b.Func("strcmp", 2, true)
	f.Mov(r9, r0)
	f.Mov(r10, r1)
	f.Label("loop")
	f.Ldb(r6, r9, 0)
	f.Ldb(r8, r10, 0)
	f.Cmp(r6, r8)
	f.Jcc(isa.LT, "lt")
	f.Jcc(isa.GT, "gt")
	f.Cmpi(r6, 0)
	f.Jcc(isa.EQ, "eq")
	f.Addi(r9, 1)
	f.Addi(r10, 1)
	f.Jmp("loop")
	f.Label("eq")
	f.Movi(r0, 0)
	f.Ret()
	f.Label("lt")
	f.Movi(r0, -1)
	f.Ret()
	f.Label("gt")
	f.Movi(r0, 1)
	f.Ret()

	// atoi(s r0) -> v (stops at the first non-digit)
	f = b.Func("atoi", 1, true)
	f.Mov(r9, r0)
	f.Movi(r0, 0)
	f.Label("loop")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, '0')
	f.Jcc(isa.LT, "done")
	f.Cmpi(r8, '9')
	f.Jcc(isa.GT, "done")
	f.Movi(r10, 10)
	f.Mul(r0, r10)
	f.Addi(r8, -'0')
	f.Add(r0, r8)
	f.Addi(r9, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// u2dec(buf r0, v r1) -> len: render v in decimal.
	f = b.Func("u2dec", 2, true)
	f.Prologue(64)
	f.Mov(r9, r0)  // out cursor
	f.Mov(r8, r1)  // value
	f.Movi(r10, 0) // digit count
	f.Mov(r6, fp)
	f.Addi(r6, -64) // temp digit buffer
	f.Label("digits")
	f.Mov(r11, r8)
	f.Movi(r5, 10)
	f.Mod(r11, r5)
	f.Addi(r11, '0')
	f.Stb(r6, 0, r11)
	f.Addi(r6, 1)
	f.Movi(r5, 10)
	f.Div(r8, r5)
	f.Addi(r10, 1)
	f.Cmpi(r8, 0)
	f.Jcc(isa.NE, "digits")
	f.Mov(r4, r10) // length
	f.Label("rev")
	f.Addi(r6, -1)
	f.Ldb(r11, r6, 0)
	f.Stb(r9, 0, r11)
	f.Addi(r9, 1)
	f.Addi(r10, -1)
	f.Cmpi(r10, 0)
	f.Jcc(isa.GT, "rev")
	f.Mov(r0, r4)
	f.Epilogue()

	// hash_fnv(buf r0, n r1) -> h: FNV-1a.
	f = b.Func("hash_fnv", 2, true)
	f.Mov(r9, r0)
	f.Movu64(r0, 0xcbf29ce484222325)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r9, 0)
	f.Xor(r0, r8)
	f.Movu64(r10, 0x100000001b3)
	f.Mul(r0, r10)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// cmp_u64(a r0, b r1) -> -1/0/1 (the default qsort comparator,
	// address-taken).
	f = b.Func("cmp_u64", 2, true)
	f.Cmp(r0, r1)
	f.Jcc(isa.LT, "lt")
	f.Jcc(isa.GT, "gt")
	f.Movi(r0, 0)
	f.Ret()
	f.Label("lt")
	f.Movi(r0, -1)
	f.Ret()
	f.Label("gt")
	f.Movi(r0, 1)
	f.Ret()

	// qsort(base r0, n r1, cmp r2): insertion sort over u64 words,
	// calling the comparator indirectly — the library's indirect-call
	// hot spot.
	f = b.Func("qsort", 3, true)
	f.Prologue(32)
	f.St(fp, -8, r0)
	f.St(fp, -16, r1)
	f.St(fp, -24, r2)
	f.Movi(r11, 1) // i
	f.Label("outer")
	f.Ld(r5, fp, -16)
	f.Cmp(r11, r5)
	f.Jcc(isa.GE, "done")
	f.Mov(r10, r11) // j
	f.Label("inner")
	f.Cmpi(r10, 0)
	f.Jcc(isa.LE, "next")
	f.Ld(r9, fp, -8) // base
	f.Mov(r8, r10)
	f.Addi(r8, -1)
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.Add(r8, r9) // &a[j-1]
	f.Ld(r0, r8, 0)
	f.Ld(r1, r8, 8)
	f.Push(r8)
	f.Push(r10)
	f.Push(r11)
	f.Ld(r6, fp, -24)
	f.CallR(r6)
	f.Pop(r11)
	f.Pop(r10)
	f.Pop(r8)
	f.Cmpi(r0, 0)
	f.Jcc(isa.LE, "next")
	f.Ld(r0, r8, 0)
	f.Ld(r1, r8, 8)
	f.St(r8, 0, r1)
	f.St(r8, 8, r0)
	f.Addi(r10, -1)
	f.Jmp("inner")
	f.Label("next")
	f.Addi(r11, 1)
	f.Jmp("outer")
	f.Label("done")
	f.Epilogue()

	// malloc(n r0) -> p: bump allocator over a static arena.
	b.DataSpace("arena", 1<<16, false)
	b.DataWords("arena_cursor", []uint64{0}, false)
	f = b.Func("malloc", 1, true)
	f.Addi(r0, 7)
	f.Movi(r10, -8)
	f.And(r0, r10)
	f.AddrOf(r9, "arena_cursor")
	f.Ld(r8, r9, 0)
	f.Mov(r11, r8)
	f.Add(r11, r0)
	f.St(r9, 0, r11)
	f.AddrOf(r10, "arena")
	f.Mov(r0, r10)
	f.Add(r0, r8)
	f.Ret()

	// free(p r0): bump allocators don't free.
	f = b.Func("free", 1, true)
	f.Ret()

	// raw_syscall(no r0, a r1, b r2, c r3) -> r. Jumping into its tail
	// is the classic "syscall; ret" gadget.
	f = b.Func("raw_syscall", 4, true)
	f.Mov(r7, r0)
	f.Mov(r0, r1)
	f.Mov(r1, r2)
	f.Mov(r2, r3)
	f.Syscall()
	f.Ret()

	// spawn(path r0) -> r: execve wrapper (the return-to-lib target).
	f = b.Func("spawn", 1, true)
	f.Movu64(r7, kernelsim.SysExecve)
	f.Syscall()
	f.Ret()

	// exit(code r0): never returns.
	f = b.Func("exit", 1, true)
	f.Movu64(r7, kernelsim.SysExit)
	f.Syscall()
	f.Halt()

	// gettimeofday(buf r0) -> 0: the syscall fallback; the VDSO
	// definition interposes it when present (§4.1).
	f = b.Func("gettimeofday", 1, true)
	f.Movu64(r7, kernelsim.SysGettimeofday)
	f.Syscall()
	f.Ret()

	// ctx_save(a r0, b r1, c r2, no r7 implicit): push a resumable
	// register frame and hand it to the scheduler stub (coroutine
	// support, setcontext analogue).
	f = b.Func("ctx_save", 3, true)
	f.Push(r0)
	f.Push(r1)
	f.Push(r2)
	f.Push(r7)
	f.TailJmp("ctx_restore")

	// ctx_restore: resume the register frame on top of the stack. Its
	// POP run is the register-loading gadget real exploits find in
	// setcontext.
	f = b.Func("ctx_restore", 0, true)
	f.Pop(r7)
	f.Pop(r2)
	f.Pop(r1)
	f.Pop(r0)
	f.Ret()

	// puts(s r0) -> n: strlen + write_out.
	f = b.Func("puts", 1, true)
	f.Prologue(16)
	f.St(fp, -8, r0)
	f.Call("strlen")
	f.Mov(r1, r0)
	f.Ld(r0, fp, -8)
	f.Call("write_out")
	f.Epilogue()

	return mustAssemble(b)
}

// VDSO builds the virtual dynamic shared object: its gettimeofday takes
// precedence over libc's (paper §4.1).
func VDSO() *module.Module {
	b := asm.NewModule("vdso")
	f := b.Func("gettimeofday", 1, true)
	f.Movu64(r7, kernelsim.SysGettimeofday)
	f.Syscall()
	f.Ret()
	return mustAssemble(b)
}
