package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
)

// Transcoded is the syscall-blocked-time workload of the asynchronous
// checking experiment: a transcoder-like daemon that alternates an
// indirect-call-dense compute burst (h264ref's prediction-mode dispatch
// shape, §7.2 Figure 5(c)) with one write endpoint per frame. Each burst
// floods more than a ToPA region of TIP packets, so a synchronous gate
// pays the accumulated decode at every frame boundary while the
// asynchronous pipeline's workers drain it during the burst — and with a
// frame per endpoint, the per-call blocked time averages over the whole
// run instead of hinging on a single final syscall.
func Transcoded() *App {
	b := asm.NewModule("transcoded").Needs("libc", "libfmt")
	b.DataSpace("inline", 32, false)
	b.DataSpace("out", 128, false)
	b.DataBytes("k_frame", []byte("frame\x00"), false)
	emitReadLine(b)
	emitExitCall(b)

	b.FuncTable("pred_tbl", []string{
		"p_dc", "p_h", "p_v", "p_diag", "p_dc2", "p_h2", "p_v2", "p_diag2",
	}, false)
	mk := func(name string, k int32) {
		f := b.Func(name, 1, false)
		f.Addi(r0, k)
		f.Movi(r8, 5)
		f.Shl(r0, r8)
		f.Movi(r8, 3)
		f.Shr(r0, r8)
		f.Ret()
	}
	mk("p_dc", 1)
	mk("p_h", 3)
	mk("p_v", 5)
	mk("p_diag", 7)
	mk("p_dc2", 11)
	mk("p_h2", 13)
	mk("p_v2", 17)
	mk("p_diag2", 19)

	// burst(frame r0) -> acc: 1536 prediction-mode dispatches through the
	// table — one TIP every handful of instructions, just over a ToPA
	// region of trace per frame.
	f := b.Func("burst", 1, false)
	f.Prologue(32)
	f.Mov(r10, r0)
	f.Addi(r10, 0x1234)
	f.Movi(r13, 0) // block
	f.Label("blk")
	f.Cmpi(r13, 1536)
	f.Jcc(isa.GE, "done")
	f.Mov(r8, r10)
	f.Movi(r5, 7)
	f.And(r8, r5)
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.AddrOf(r6, "pred_tbl")
	f.Add(r6, r8)
	f.Ld(r6, r6, 0)
	f.Mov(r0, r10)
	f.St(fp, -24, r13)
	f.CallR(r6)
	f.Ld(r13, fp, -24)
	f.Mov(r10, r0)
	f.Addi(r10, 1)
	f.Addi(r13, 1)
	f.Jmp("blk")
	f.Label("done")
	f.Mov(r0, r10)
	f.Epilogue()

	// main: read the frame count, then per frame run one burst and write
	// the frame checksum — the per-frame endpoint the gate experiment
	// measures.
	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(24)
	main.AddrOf(r0, "inline")
	main.Movi(r1, 31)
	main.Call("read_line")
	main.AddrOf(r0, "inline")
	main.Call("atoi")
	main.Cmpi(r0, 1)
	main.Jcc(isa.GE, "run")
	main.Movi(r0, 1)
	main.Label("run")
	main.St(fp, -8, r0)
	main.Movi(r11, 0) // frame
	main.Label("frame")
	main.Ld(r8, fp, -8)
	main.Cmp(r11, r8)
	main.Jcc(isa.GE, "done")
	main.St(fp, -16, r11)
	main.Mov(r0, r11)
	main.Call("burst")
	main.Mov(r2, r0)
	main.AddrOf(r0, "out")
	main.AddrOf(r1, "k_frame")
	main.Call("fmt_kv")
	main.Mov(r1, r0)
	main.AddrOf(r0, "out")
	main.Call("write_out")
	main.Ld(r11, fp, -16)
	main.Addi(r11, 1)
	main.Jmp("frame")
	main.Label("done")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	return &App{
		Name:     "transcoded",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			return []byte(fmt.Sprintf("%d\n", scale))
		},
	}
}
