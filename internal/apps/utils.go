package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
)

// Tar builds the tar-like archiver: for each input entry it reads a name
// line, a size line and the raw bytes, computes the 512-byte-block
// header checksum (libz via PLT), and appends header plus data to the
// archive file. Its profile matches the paper's tar: checksum loops with
// periodic write endpoints.
//
// Input: repeated "name\n" "size\n" <size raw bytes>; EOF ends the run.
func Tar() *App {
	b := asm.NewModule("tar").Needs("libc", "libz", "libfmt", "libio")
	b.DataSpace("name", 128, false)
	b.DataSpace("szline", 32, false)
	b.DataSpace("data", 32768, false)
	b.DataSpace("hdr", 512, false)
	b.DataBytes("k_sum", []byte("sum\x00"), false)
	b.DataBytes("outname", []byte("out.tar\x00"), false)
	emitReadLine(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(64)
	// Open the archive once and direct the buffered writer at it
	// (stdio-style batching: headers coalesce, bulk data passes
	// through).
	main.AddrOf(r0, "outname")
	main.Call("open_file")
	main.St(fp, -8, r0) // fd
	main.Call("io_setfd")
	main.Ld(r0, fp, -8)
	main.Movi(r8, 0)
	main.St(fp, -48, r8) // entry count
	main.Label("entry")
	main.AddrOf(r0, "name")
	main.Movi(r1, 127)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "fini")
	main.AddrOf(r0, "szline")
	main.Movi(r1, 31)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "fini")
	main.AddrOf(r0, "szline")
	main.Call("atoi")
	main.Cmpi(r0, 32768)
	main.Jcc(isa.LE, "szok")
	main.Movi(r0, 32768)
	main.Label("szok")
	main.St(fp, -16, r0) // size
	// read(0, data, size) — raw bytes.
	main.Movu64(r7, 0)
	main.Movi(r0, 0)
	main.AddrOf(r1, "data")
	main.Ld(r2, fp, -16)
	main.Syscall()
	// Block checksums over the data, 512 bytes at a time.
	main.Movi(r11, 0) // offset
	main.Movi(r10, 0) // total sum
	main.Label("blocks")
	main.Ld(r8, fp, -16)
	main.Cmp(r11, r8)
	main.Jcc(isa.GE, "sumdone")
	main.St(fp, -24, r11)
	main.St(fp, -32, r10)
	main.AddrOf(r0, "data")
	main.Add(r0, r11)
	main.Ld(r1, fp, -16)
	main.Sub(r1, r11)
	main.Cmpi(r1, 512)
	main.Jcc(isa.LE, "lastblk")
	main.Movi(r1, 512)
	main.Label("lastblk")
	main.Call("checksum")
	main.Ld(r11, fp, -24)
	main.Ld(r10, fp, -32)
	main.Add(r10, r0)
	main.Addi(r11, 512)
	main.Jmp("blocks")
	main.Label("sumdone")
	// Header: "sum=<total>\n" rendered into hdr.
	main.AddrOf(r0, "hdr")
	main.AddrOf(r1, "k_sum")
	main.Mov(r2, r10)
	main.Call("fmt_kv")
	main.St(fp, -40, r0)
	// Append header + data to the archive through the buffered writer.
	main.AddrOf(r0, "hdr")
	main.Ld(r1, fp, -40)
	main.Call("io_write")
	main.AddrOf(r0, "data")
	main.Ld(r1, fp, -16)
	main.Call("io_write")
	main.Ld(r8, fp, -48)
	main.Addi(r8, 1)
	main.St(fp, -48, r8)
	main.Jmp("entry")
	main.Label("fini")
	main.Call("io_flush")
	main.Ld(r0, fp, -8)
	main.Call("close_fd")
	// Verbose-mode summary to stdout.
	main.AddrOf(r0, "hdr")
	main.AddrOf(r1, "k_sum")
	main.Ld(r2, fp, -48)
	main.Call("fmt_kv")
	main.Mov(r1, r0)
	main.AddrOf(r0, "hdr")
	main.Call("write_out")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	return &App{
		Name:     "tar",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "utility",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			for i := 0; i < scale; i++ {
				n := 8192 + r.Intn(24576)
				in = append(in, fmt.Sprintf("file%03d.dat\n%d\n", i, n)...)
				blob := make([]byte, n)
				r.Read(blob)
				in = append(in, blob...)
			}
			return in
		},
	}
}

// DD builds the dd-like block copier: large reads and writes with almost
// no branching — the paper's lowest-overhead utility ("small number of
// branch instructions and seldomly invokes system calls").
func DD() *App {
	b := asm.NewModule("dd").Needs("libc")
	b.DataSpace("blk", 65536, false)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Label("loop")
	// read(0, blk, 65536)
	main.Movu64(r7, 0)
	main.Movi(r0, 0)
	main.AddrOf(r1, "blk")
	main.Movi(r2, 65536)
	main.Syscall()
	main.Cmpi(r0, 0)
	main.Jcc(isa.LE, "fini")
	// write(1, blk, n)
	main.Mov(r2, r0)
	main.Movu64(r7, 1)
	main.Movi(r0, 1)
	main.AddrOf(r1, "blk")
	main.Syscall()
	main.Jmp("loop")
	main.Label("fini")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	return &App{
		Name:     "dd",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "utility",
		MakeInput: func(scale int, seed int64) []byte {
			blob := make([]byte, scale*128*1024)
			rng(seed).Read(blob)
			return blob
		},
	}
}

// Make builds the make-like dependency runner: it parses "target: deps"
// rules, then repeatedly sweeps the rule list building every target
// whose dependencies are all built (a fixpoint like a topological
// order), hashing each built target and logging one line per build.
//
// Input: lines "target dep1 dep2 ..." (space separated; first word is
// the target), terminated by EOF.
func Make() *App {
	b := asm.NewModule("make").Needs("libc", "libcrypt", "libfmt")
	const maxRules = 64
	b.DataSpace("line", 256, false)
	// Rule storage: names as fixed 32-byte slots, up to 8 deps each.
	b.DataSpace("names", maxRules*32, false)
	b.DataSpace("deps", maxRules*8*32, false)
	b.DataSpace("depcnt", maxRules*8, false)
	b.DataSpace("built", maxRules*8, false)
	b.DataWords("nrules", []uint64{0}, false)
	b.DataWords("progress", []uint64{0}, false)
	b.DataSpace("log", 256, false)
	b.DataSpace("unit", 4096, false)
	b.DataBytes("k_built", []byte("built\x00"), false)
	emitReadLine(b)
	emitRenderBody(b)
	emitExitCall(b)

	// parse_word(src r0, dst r1) -> src': copy up to space/NUL into a
	// 32-byte slot; returns the advanced source pointer (past one
	// trailing space if present).
	f := b.Func("parse_word", 2, false)
	f.Mov(r9, r0)
	f.Mov(r10, r1)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmpi(r6, 31)
	f.Jcc(isa.GE, "term")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, ' ')
	f.Jcc(isa.EQ, "sp")
	f.Cmpi(r8, 0)
	f.Jcc(isa.EQ, "term")
	f.Stb(r10, 0, r8)
	f.Addi(r9, 1)
	f.Addi(r10, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("sp")
	f.Addi(r9, 1)
	f.Label("term")
	f.Movi(r8, 0)
	f.Stb(r10, 0, r8)
	f.Mov(r0, r9)
	f.Ret()

	// find_rule(name r0) -> index or -1: linear strcmp scan.
	f = b.Func("find_rule", 1, false)
	f.Prologue(16)
	f.St(fp, -8, r0)
	f.Movi(r11, 0)
	f.Label("scan")
	f.AddrOf(r9, "nrules")
	f.Ld(r8, r9, 0)
	f.Cmp(r11, r8)
	f.Jcc(isa.GE, "miss")
	f.AddrOf(r1, "names")
	f.Mov(r8, r11)
	f.Movi(r5, 32)
	f.Mul(r8, r5)
	f.Add(r1, r8)
	f.Ld(r0, fp, -8)
	f.Push(r11)
	f.Call("strcmp")
	f.Pop(r11)
	f.Cmpi(r0, 0)
	f.Jcc(isa.EQ, "hit")
	f.Addi(r11, 1)
	f.Jmp("scan")
	f.Label("hit")
	f.Mov(r0, r11)
	f.Epilogue()
	f.Label("miss")
	f.Movi(r0, -1)
	f.Epilogue()

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(48)
	// Parse phase.
	main.Label("parse")
	main.AddrOf(r0, "line")
	main.Movi(r1, 255)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "build")
	main.AddrOf(r9, "nrules")
	main.Ld(r11, r9, 0)
	main.Cmpi(r11, int32(maxRules))
	main.Jcc(isa.GE, "parse")
	main.St(fp, -8, r11) // rule index
	// Target name.
	main.AddrOf(r0, "line")
	main.AddrOf(r1, "names")
	main.Mov(r8, r11)
	main.Movi(r5, 32)
	main.Mul(r8, r5)
	main.Add(r1, r8)
	main.Call("parse_word")
	main.St(fp, -16, r0) // source cursor
	// Dependencies.
	main.Movi(r10, 0) // dep count
	main.Label("dep")
	main.Cmpi(r10, 8)
	main.Jcc(isa.GE, "depdone")
	main.Ld(r9, fp, -16)
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "depdone")
	main.St(fp, -24, r10)
	main.Ld(r0, fp, -16)
	main.AddrOf(r1, "deps")
	main.Ld(r8, fp, -8)
	main.Movi(r5, 8*32)
	main.Mul(r8, r5)
	main.Add(r1, r8)
	main.Ld(r8, fp, -24)
	main.Movi(r5, 32)
	main.Mul(r8, r5)
	main.Add(r1, r8)
	main.Call("parse_word")
	main.St(fp, -16, r0)
	main.Ld(r10, fp, -24)
	main.Addi(r10, 1)
	main.Jmp("dep")
	main.Label("depdone")
	// Record the rule.
	main.AddrOf(r9, "depcnt")
	main.Ld(r8, fp, -8)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.Add(r9, r8)
	main.St(r9, 0, r10)
	main.AddrOf(r9, "nrules")
	main.Ld(r8, fp, -8)
	main.Addi(r8, 1)
	main.St(r9, 0, r8)
	main.Jmp("parse")

	// Build phase: sweep until no progress.
	main.Label("build")
	main.AddrOf(r9, "progress")
	main.Movi(r8, 0)
	main.St(r9, 0, r8)
	main.Movi(r11, 0) // rule index
	main.Label("sweep")
	main.St(fp, -8, r11)
	main.AddrOf(r9, "nrules")
	main.Ld(r8, r9, 0)
	main.Cmp(r11, r8)
	main.Jcc(isa.GE, "sweepdone")
	// Skip already-built targets.
	main.AddrOf(r9, "built")
	main.Mov(r8, r11)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.Add(r9, r8)
	main.Ld(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.NE, "next")
	// All deps built? A dep is built if find_rule misses (leaf) or its
	// built flag is set.
	main.Movi(r10, 0)
	main.Label("chk")
	main.AddrOf(r9, "depcnt")
	main.Ld(r8, fp, -8)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.Add(r9, r8)
	main.Ld(r8, r9, 0)
	main.Cmp(r10, r8)
	main.Jcc(isa.GE, "ready")
	main.St(fp, -24, r10)
	main.AddrOf(r0, "deps")
	main.Ld(r8, fp, -8)
	main.Movi(r5, 8*32)
	main.Mul(r8, r5)
	main.Add(r0, r8)
	main.Ld(r8, fp, -24)
	main.Movi(r5, 32)
	main.Mul(r8, r5)
	main.Add(r0, r8)
	main.Call("find_rule")
	main.Ld(r10, fp, -24)
	main.Ld(r11, fp, -8)
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "depok") // leaf dependency
	main.AddrOf(r9, "built")
	main.Movi(r5, 8)
	main.Mul(r0, r5)
	main.Add(r9, r0)
	main.Ld(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "next") // dep not built yet
	main.Label("depok")
	main.Addi(r10, 1)
	main.Jmp("chk")
	main.Label("ready")
	// Build it: synthesize and digest a compilation unit, then log.
	main.AddrOf(r0, "unit")
	main.Movi(r1, 4096)
	main.Ld(r2, fp, -8)
	main.Call("render_body")
	main.AddrOf(r0, "unit")
	main.Movi(r1, 4096)
	main.Ld(r2, fp, -8)
	main.Call("digest")
	main.Mov(r2, r0)
	main.AddrOf(r0, "log")
	main.AddrOf(r1, "k_built")
	main.Call("fmt_kv")
	main.Mov(r1, r0)
	main.AddrOf(r0, "log")
	main.Call("write_out")
	main.Ld(r11, fp, -8)
	main.AddrOf(r9, "built")
	main.Mov(r8, r11)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.Add(r9, r8)
	main.Movi(r8, 1)
	main.St(r9, 0, r8)
	main.AddrOf(r9, "progress")
	main.St(r9, 0, r8)
	main.Label("next")
	main.Ld(r11, fp, -8)
	main.Addi(r11, 1)
	main.Jmp("sweep")
	main.Label("sweepdone")
	main.AddrOf(r9, "progress")
	main.Ld(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.NE, "build")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	return &App{
		Name:     "make",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "utility",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			n := 8 + scale
			if n > 60 {
				n = 60
			}
			for i := 0; i < n; i++ {
				line := fmt.Sprintf("t%02d", i)
				for d := 0; d < r.Intn(3); d++ {
					line += fmt.Sprintf(" t%02d", r.Intn(i+1))
				}
				in = append(in, (line + "\n")...)
			}
			return in
		},
	}
}

// SCP builds the scp-like copier: a header line, then the payload copied
// in 4 KiB chunks, each digested (libcrypt) before being written to the
// destination file.
//
// Input: "name size\n" then size raw bytes.
func SCP() *App {
	b := asm.NewModule("scp").Needs("libc", "libcrypt", "libfmt")
	b.DataSpace("hdrline", 128, false)
	b.DataSpace("chunk", 8192, false)
	b.DataSpace("log", 128, false)
	b.DataBytes("k_xfer", []byte("xfer\x00"), false)
	b.DataBytes("dst", []byte("copy.out\x00"), false)
	emitReadLine(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(48)
	main.AddrOf(r0, "hdrline")
	main.Movi(r1, 127)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "fini")
	// Size after the space.
	main.AddrOf(r9, "hdrline")
	main.Label("sp")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "nosz")
	main.Cmpi(r8, ' ')
	main.Jcc(isa.EQ, "gotsp")
	main.Addi(r9, 1)
	main.Jmp("sp")
	main.Label("gotsp")
	main.Addi(r9, 1)
	main.Mov(r0, r9)
	main.Call("atoi")
	main.Jmp("havesz")
	main.Label("nosz")
	main.Movi(r0, 0)
	main.Label("havesz")
	main.St(fp, -8, r0) // remaining
	main.AddrOf(r0, "dst")
	main.Call("open_file")
	main.St(fp, -16, r0) // fd
	main.Movi(r10, 0)    // running digest
	main.Label("chunk")
	main.Ld(r8, fp, -8)
	main.Cmpi(r8, 0)
	main.Jcc(isa.LE, "done")
	// n = min(remaining, 8192)
	main.Cmpi(r8, 8192)
	main.Jcc(isa.LE, "cok")
	main.Movi(r8, 8192)
	main.Label("cok")
	main.St(fp, -24, r8)
	main.St(fp, -32, r10)
	// read(0, chunk, n)
	main.Movu64(r7, 0)
	main.Movi(r0, 0)
	main.AddrOf(r1, "chunk")
	main.Ld(r2, fp, -24)
	main.Syscall()
	main.Cmpi(r0, 0)
	main.Jcc(isa.LE, "done")
	main.St(fp, -24, r0) // actual n
	main.AddrOf(r0, "chunk")
	main.Ld(r1, fp, -24)
	main.Movi(r2, 0)
	main.Call("digest")
	main.Ld(r10, fp, -32)
	main.Xor(r10, r0)
	// write_fd(fd, chunk, n)
	main.Ld(r0, fp, -16)
	main.AddrOf(r1, "chunk")
	main.Ld(r2, fp, -24)
	main.St(fp, -40, r10)
	main.Call("write_fd")
	main.Ld(r10, fp, -40)
	main.Ld(r8, fp, -8)
	main.Ld(r5, fp, -24)
	main.Sub(r8, r5)
	main.St(fp, -8, r8)
	main.Jmp("chunk")
	main.Label("done")
	main.AddrOf(r0, "log")
	main.AddrOf(r1, "k_xfer")
	main.Mov(r2, r10)
	main.Call("fmt_kv")
	main.Mov(r1, r0)
	main.AddrOf(r0, "log")
	main.Call("write_out")
	main.Ld(r0, fp, -16)
	main.Call("close_fd")
	main.Label("fini")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	return &App{
		Name:     "scp",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "utility",
		MakeInput: func(scale int, seed int64) []byte {
			n := scale * 8 * 1024
			in := []byte(fmt.Sprintf("payload.bin %d\n", n))
			blob := make([]byte, n)
			rng(seed).Read(blob)
			return append(in, blob...)
		},
	}
}
