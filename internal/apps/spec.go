package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// SpecApps returns the twelve SPEC-CPU-2006-like kernels of Figure 5(c).
// Each reads an iteration count from stdin, runs its compute kernel, and
// writes a single result line (so, unlike the servers, endpoint checks
// are rare and the overhead is tracing-dominated — except h264ref, whose
// indirect-call-dense hot loop floods the trace with TIP packets, the
// paper's outlier).
func SpecApps() []*App {
	return []*App{
		specPerlbench(), specBzip2(), specGcc(), specMcf(), specMilc(),
		specGobmk(), specHmmer(), specSjeng(), specLibquantum(),
		specH264ref(), specLbm(), specSphinx3(),
	}
}

// specShell wraps a kernel body in the common harness: main reads the
// iteration count, calls kernel(n), reports the result. The body builder
// must define the function "kernel" with arity 1 returning a checksum.
func specShell(name string, needs []string, body func(b *asm.Builder)) *module.Module {
	b := asm.NewModule(name).Needs(needs...)
	b.DataSpace("inline", 32, false)
	b.DataSpace("out", 128, false)
	b.DataBytes("k_res", []byte("res\x00"), false)
	emitReadLine(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(16)
	main.AddrOf(r0, "inline")
	main.Movi(r1, 31)
	main.Call("read_line")
	main.AddrOf(r0, "inline")
	main.Call("atoi")
	main.Cmpi(r0, 1)
	main.Jcc(isa.GE, "run")
	main.Movi(r0, 1)
	main.Label("run")
	main.Call("kernel")
	main.Mov(r2, r0)
	main.AddrOf(r0, "out")
	main.AddrOf(r1, "k_res")
	main.Call("fmt_kv")
	main.Mov(r1, r0)
	main.AddrOf(r0, "out")
	main.Call("write_out")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	body(b)
	return mustAssemble(b)
}

func specApp(name string, needs []string, body func(b *asm.Builder)) *App {
	return &App{
		Name:     name,
		Exec:     specShell(name, needs, body),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "spec",
		MakeInput: func(scale int, seed int64) []byte {
			return []byte(fmt.Sprintf("%d\n", scale))
		},
	}
}

// perlbench: a bytecode interpreter — dispatch through an op table with
// moderately sized handlers (one indirect call per bytecode).
func specPerlbench() *App {
	return specApp("perlbench", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		prog := make([]byte, 256)
		s := uint32(12345)
		for i := range prog {
			s = s*1664525 + 1013904223
			prog[i] = byte(s >> 24)
		}
		b.DataBytes("prog", prog, false)
		b.FuncTable("op_tbl", []string{"op_add", "op_mix", "op_rot", "op_sub"}, false)

		// Handlers (acc r0, operand r1) -> acc, each with a small inner
		// hash loop so dispatch density resembles an interpreter, not a
		// trampoline.
		mk := func(name string, inner func(f *asm.Func)) {
			f := b.Func(name, 2, false)
			f.Movi(r6, 0)
			f.Label("w")
			f.Cmpi(r6, 4)
			f.Jcc(isa.GE, "x")
			inner(f)
			f.Addi(r6, 1)
			f.Jmp("w")
			f.Label("x")
			f.Ret()
		}
		mk("op_add", func(f *asm.Func) {
			f.Add(r0, r1)
			f.Movu64(r8, 0x9e3779b97f4a7c15)
			f.Mul(r0, r8)
		})
		mk("op_mix", func(f *asm.Func) {
			f.Xor(r0, r1)
			f.Movi(r8, 13)
			f.Shl(r1, r8)
			f.Add(r0, r1)
		})
		mk("op_rot", func(f *asm.Func) {
			f.Movi(r8, 7)
			f.Shl(r0, r8)
			f.Movi(r8, 50)
			f.Shr(r0, r8)
			f.Add(r0, r1)
		})
		mk("op_sub", func(f *asm.Func) {
			f.Sub(r0, r1)
			f.Movi(r8, 3)
			f.Shr(r0, r8)
			f.Xor(r0, r1)
		})

		// kernel(n r0) -> acc.
		f := b.Func("kernel", 1, false)
		f.Prologue(32)
		f.St(fp, -8, r0)
		f.Movi(r11, 0) // iter
		f.Movi(r10, 1) // acc
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.Movi(r13, 0) // pc
		f.Label("fetch")
		f.Cmpi(r13, 256)
		f.Jcc(isa.GE, "iend")
		f.AddrOf(r9, "prog")
		f.Add(r9, r13)
		f.Ldb(r8, r9, 0)
		f.Mov(r1, r8) // operand = raw byte
		f.Movi(r5, 3)
		f.And(r8, r5) // opcode
		f.Movi(r5, 8)
		f.Mul(r8, r5)
		f.AddrOf(r6, "op_tbl")
		f.Add(r6, r8)
		f.Ld(r6, r6, 0)
		f.Mov(r0, r10)
		f.St(fp, -16, r11)
		f.St(fp, -24, r13)
		f.CallR(r6)
		f.Ld(r11, fp, -16)
		f.Ld(r13, fp, -24)
		f.Mov(r10, r0)
		f.Addi(r13, 1)
		f.Jmp("fetch")
		f.Label("iend")
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// bzip2: RLE compress/decompress rounds over a generated block
// (branch-heavy, indirect-light, libz across the PLT).
func specBzip2() *App {
	return specApp("bzip2", []string{"libc", "libz", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("blk", 4096, false)
		b.DataSpace("cmp", 16384, false)
		b.DataSpace("dec", 8192, false)
		f := b.Func("kernel", 1, false)
		f.Prologue(32)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0) // checksum
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.St(fp, -16, r11)
		f.St(fp, -24, r10)
		// Fill a compressible block: runs of length (i%17)+1.
		f.AddrOf(r9, "blk")
		f.Movi(r6, 0)
		f.Label("fill")
		f.Cmpi(r6, 4096)
		f.Jcc(isa.GE, "comp")
		f.Mov(r8, r6)
		f.Movi(r5, 17)
		f.Div(r8, r5)
		f.Ld(r5, fp, -16)
		f.Add(r8, r5)
		f.Stb(r9, 0, r8)
		f.Addi(r9, 1)
		f.Addi(r6, 1)
		f.Jmp("fill")
		f.Label("comp")
		f.AddrOf(r0, "cmp")
		f.AddrOf(r1, "blk")
		f.Movi(r2, 4096)
		f.Call("rle_compress")
		f.St(fp, -32, r0)
		f.AddrOf(r0, "dec")
		f.AddrOf(r1, "cmp")
		f.Ld(r2, fp, -32)
		f.Call("rle_decompress")
		f.Ld(r10, fp, -24)
		f.Add(r10, r0)
		f.Ld(r11, fp, -16)
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// gcc: builds a binary search tree in the libc arena and walks it
// recursively — allocation traffic plus deep call/return chains.
func specGcc() *App {
	return specApp("gcc", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.DataWords("root", []uint64{0}, false)

		// insert(node r0, key r1) -> node: recursive BST insert.
		// Node layout: [key][left][right].
		f := b.Func("insert", 2, false)
		f.Prologue(32)
		f.Cmpi(r0, 0)
		f.Jcc(isa.NE, "walk")
		// New node.
		f.St(fp, -16, r1)
		f.Movi(r0, 24)
		f.Call("malloc")
		f.Ld(r1, fp, -16)
		f.St(r0, 0, r1)
		f.Movi(r8, 0)
		f.St(r0, 8, r8)
		f.St(r0, 16, r8)
		f.Epilogue()
		f.Label("walk")
		f.St(fp, -8, r0)
		f.St(fp, -16, r1)
		f.Ld(r8, r0, 0)
		f.Cmp(r1, r8)
		f.Jcc(isa.LT, "left")
		f.Ld(r0, r0, 16)
		f.Call("insert")
		f.Ld(r9, fp, -8)
		f.St(r9, 16, r0)
		f.Ld(r0, fp, -8)
		f.Epilogue()
		f.Label("left")
		f.Ld(r0, r0, 8)
		f.Call("insert")
		f.Ld(r9, fp, -8)
		f.St(r9, 8, r0)
		f.Ld(r0, fp, -8)
		f.Epilogue()

		// sum(node r0) -> total: recursive walk.
		f = b.Func("sum", 1, false)
		f.Prologue(24)
		f.Cmpi(r0, 0)
		f.Jcc(isa.NE, "go")
		f.Movi(r0, 0)
		f.Epilogue()
		f.Label("go")
		f.St(fp, -8, r0)
		f.Ld(r0, r0, 8)
		f.Call("sum")
		f.St(fp, -16, r0)
		f.Ld(r9, fp, -8)
		f.Ld(r0, r9, 16)
		f.Call("sum")
		f.Ld(r8, fp, -16)
		f.Add(r0, r8)
		f.Ld(r9, fp, -8)
		f.Ld(r8, r9, 0)
		f.Add(r0, r8)
		f.Epilogue()

		// kernel(n r0): per iteration insert 32 keys and sum the tree.
		f = b.Func("kernel", 1, false)
		f.Prologue(40)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.St(fp, -16, r11)
		f.St(fp, -24, r10)
		f.Movi(r13, 0)
		f.Label("ins")
		f.Cmpi(r13, 32)
		f.Jcc(isa.GE, "walk")
		f.St(fp, -32, r13)
		// key = (i*37 + j*101) % 1021
		f.Ld(r1, fp, -16)
		f.Movi(r5, 37)
		f.Mul(r1, r5)
		f.Mov(r8, r13)
		f.Movi(r5, 101)
		f.Mul(r8, r5)
		f.Add(r1, r8)
		f.Movi(r5, 1021)
		f.Mod(r1, r5)
		f.AddrOf(r9, "root")
		f.Ld(r0, r9, 0)
		f.Call("insert")
		f.AddrOf(r9, "root")
		f.St(r9, 0, r0)
		f.Ld(r13, fp, -32)
		f.Addi(r13, 1)
		f.Jmp("ins")
		f.Label("walk")
		f.AddrOf(r9, "root")
		f.Ld(r0, r9, 0)
		f.Call("sum")
		f.Ld(r10, fp, -24)
		f.Xor(r10, r0)
		f.Ld(r11, fp, -16)
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// mcf: network-simplex-like relaxation sweeps over a static graph:
// data-dependent conditional branches dominate.
func specMcf() *App {
	return specApp("mcf", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("dist", 1024*8, false)
		f := b.Func("kernel", 1, false)
		f.Prologue(16)
		f.St(fp, -8, r0)
		// init dist[i] = i*2654435761 % 65536
		f.AddrOf(r9, "dist")
		f.Movi(r6, 0)
		f.Label("init")
		f.Cmpi(r6, 1024)
		f.Jcc(isa.GE, "sweeps")
		f.Mov(r8, r6)
		f.Movu64(r5, 2654435761)
		f.Mul(r8, r5)
		f.Movu64(r5, 65536)
		f.Mod(r8, r5)
		f.St(r9, 0, r8)
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("init")
		f.Label("sweeps")
		f.Movi(r11, 0)
		f.Movi(r10, 0) // relaxations done
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.Movi(r6, 1)
		f.AddrOf(r9, "dist")
		f.Label("relax")
		f.Cmpi(r6, 1024)
		f.Jcc(isa.GE, "iend")
		f.Ld(r8, r9, 0) // dist[i-1]
		f.Ld(r5, r9, 8) // dist[i]
		f.Addi(r8, 3)   // edge weight
		f.Cmp(r8, r5)
		f.Jcc(isa.GE, "norelax")
		f.St(r9, 8, r8)
		f.Addi(r10, 1)
		f.Label("norelax")
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("relax")
		f.Label("iend")
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// milc: lattice arithmetic — long multiply chains, highly predictable
// branches, minimal trace volume.
func specMilc() *App {
	return specApp("milc", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		f := b.Func("kernel", 1, false)
		f.Mov(r11, r0)
		f.Movi(r10, 0x243f)
		f.Label("iter")
		f.Cmpi(r11, 0)
		f.Jcc(isa.LE, "done")
		f.Movi(r6, 0)
		f.Label("lat")
		f.Cmpi(r6, 4096)
		f.Jcc(isa.GE, "iend")
		f.Movu64(r8, 6364136223846793005)
		f.Mul(r10, r8)
		f.Addi(r10, 1442695040888963407>>32)
		f.Mov(r8, r10)
		f.Movi(r5, 33)
		f.Shr(r8, r5)
		f.Xor(r10, r8)
		f.Addi(r6, 1)
		f.Jmp("lat")
		f.Label("iend")
		f.Addi(r11, -1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Ret()
	})
}

// gobmk: recursive game-tree evaluation — deep call/return chains with
// data-dependent pruning branches.
func specGobmk() *App {
	return specApp("gobmk", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		// eval(depth r0, seed r1) -> score: fan-out 5, depth-limited.
		f := b.Func("eval", 2, false)
		f.Prologue(40)
		f.Cmpi(r0, 0)
		f.Jcc(isa.GT, "expand")
		// Leaf: mix the seed.
		f.Mov(r0, r1)
		f.Movu64(r8, 0x9e3779b97f4a7c15)
		f.Mul(r0, r8)
		f.Movi(r8, 48)
		f.Shr(r0, r8)
		f.Epilogue()
		f.Label("expand")
		f.St(fp, -8, r0)
		f.St(fp, -16, r1)
		f.Movi(r11, 0) // move
		f.Movi(r10, 0) // best
		f.Label("moves")
		f.Cmpi(r11, 5)
		f.Jcc(isa.GE, "ret")
		f.St(fp, -24, r11)
		f.St(fp, -32, r10)
		f.Ld(r0, fp, -8)
		f.Addi(r0, -1)
		f.Ld(r1, fp, -16)
		f.Mov(r8, r11)
		f.Addi(r8, 17)
		f.Mul(r1, r8)
		f.Addi(r1, 7)
		f.Call("eval")
		f.Ld(r10, fp, -32)
		f.Ld(r11, fp, -24)
		f.Cmp(r0, r10)
		f.Jcc(isa.LE, "nobest")
		f.Mov(r10, r0)
		f.Label("nobest")
		f.Addi(r11, 1)
		f.Jmp("moves")
		f.Label("ret")
		f.Mov(r0, r10)
		f.Epilogue()

		f = b.Func("kernel", 1, false)
		f.Prologue(24)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.St(fp, -16, r11)
		f.St(fp, -24, r10)
		f.Movi(r0, 4) // depth
		f.Ld(r1, fp, -16)
		f.Addi(r1, 1)
		f.Call("eval")
		f.Ld(r10, fp, -24)
		f.Add(r10, r0)
		f.Ld(r11, fp, -16)
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// hmmer: dynamic-programming table fill — nested loops with max()
// branches, no indirect flow.
func specHmmer() *App {
	return specApp("hmmer", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("dp", 65*8, false)
		f := b.Func("kernel", 1, false)
		f.Mov(r13, r0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Cmpi(r13, 0)
		f.Jcc(isa.LE, "done")
		f.Movi(r11, 0) // row
		f.Label("row")
		f.Cmpi(r11, 64)
		f.Jcc(isa.GE, "iend")
		f.AddrOf(r9, "dp")
		f.Movi(r6, 0) // col
		f.Label("col")
		f.Cmpi(r6, 64)
		f.Jcc(isa.GE, "rend")
		f.Ld(r8, r9, 0)
		f.Ld(r5, r9, 8)
		f.Mov(r4, r11)
		f.Add(r4, r6)
		f.Add(r8, r4)
		f.Cmp(r8, r5)
		f.Jcc(isa.LE, "keep")
		f.St(r9, 8, r8)
		f.Jmp("adv")
		f.Label("keep")
		f.Addi(r5, 1)
		f.St(r9, 8, r5)
		f.Label("adv")
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("col")
		f.Label("rend")
		f.Addi(r11, 1)
		f.Jmp("row")
		f.Label("iend")
		f.AddrOf(r9, "dp")
		f.Ld(r8, r9, 256)
		f.Add(r10, r8)
		f.Addi(r13, -1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Ret()
	})
}

// sjeng: minimax recursion with an indirect move-generator table — a mix
// of deep returns and occasional indirect calls.
func specSjeng() *App {
	return specApp("sjeng", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.FuncTable("gen_tbl", []string{"gen_quiet", "gen_capture", "gen_check"}, false)
		mk := func(name string, mix uint64) {
			f := b.Func(name, 1, false)
			f.Movu64(r8, mix)
			f.Mul(r0, r8)
			f.Mov(r8, r0)
			f.Movi(r5, 29)
			f.Shr(r8, r5)
			f.Xor(r0, r8)
			f.Ret()
		}
		mk("gen_quiet", 0x9e3779b97f4a7c15)
		mk("gen_capture", 0xc2b2ae3d27d4eb4f)
		mk("gen_check", 0x165667b19e3779f9)

		// search(depth r0, pos r1) -> score.
		f := b.Func("search", 2, false)
		f.Prologue(40)
		f.Cmpi(r0, 0)
		f.Jcc(isa.GT, "expand")
		f.Mov(r0, r1)
		f.Epilogue()
		f.Label("expand")
		f.St(fp, -8, r0)
		f.St(fp, -16, r1)
		// Static evaluation of the node: a scoring loop keeps the
		// instruction-per-branch ratio chess-like rather than
		// trampoline-like.
		f.Movi(r6, 0)
		f.Label("score")
		f.Cmpi(r6, 24)
		f.Jcc(isa.GE, "gen")
		f.Movu64(r8, 0x9e3779b97f4a7c15)
		f.Mul(r1, r8)
		f.Mov(r8, r1)
		f.Movi(r5, 31)
		f.Shr(r8, r5)
		f.Xor(r1, r8)
		f.Addi(r6, 1)
		f.Jmp("score")
		f.Label("gen")
		f.Ld(r1, fp, -16)
		// Generate moves via the table (indirect call).
		f.Mov(r8, r1)
		f.Movi(r5, 3)
		f.Mod(r8, r5)
		f.Movi(r5, 8)
		f.Mul(r8, r5)
		f.AddrOf(r6, "gen_tbl")
		f.Add(r6, r8)
		f.Ld(r6, r6, 0)
		f.Mov(r0, r1)
		f.CallR(r6)
		f.St(fp, -24, r0) // move seed
		f.Movi(r11, 0)
		f.Movi(r10, 0)
		f.Label("moves")
		f.Cmpi(r11, 3)
		f.Jcc(isa.GE, "ret")
		f.St(fp, -32, r11)
		f.St(fp, -40, r10)
		f.Ld(r0, fp, -8)
		f.Addi(r0, -1)
		f.Ld(r1, fp, -24)
		f.Add(r1, r11)
		f.Call("search")
		f.Ld(r10, fp, -40)
		f.Ld(r11, fp, -32)
		f.Xor(r10, r0)
		f.Addi(r11, 1)
		f.Jmp("moves")
		f.Label("ret")
		f.Mov(r0, r10)
		f.Epilogue()

		f = b.Func("kernel", 1, false)
		f.Prologue(24)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.St(fp, -16, r11)
		f.St(fp, -24, r10)
		f.Movi(r0, 4)
		f.Ld(r1, fp, -16)
		f.Addi(r1, 3)
		f.Call("search")
		f.Ld(r10, fp, -24)
		f.Add(r10, r0)
		f.Ld(r11, fp, -16)
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// libquantum: gate operations as bit toggles over a register array —
// regular strided loops.
func specLibquantum() *App {
	return specApp("libquantum", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("qreg", 2048*8, false)
		f := b.Func("kernel", 1, false)
		f.Mov(r13, r0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Cmpi(r13, 0)
		f.Jcc(isa.LE, "done")
		f.AddrOf(r9, "qreg")
		f.Movi(r6, 0)
		f.Label("gate")
		f.Cmpi(r6, 2048)
		f.Jcc(isa.GE, "iend")
		f.Ld(r8, r9, 0)
		f.Mov(r5, r6)
		f.Movi(r4, 63)
		f.And(r5, r4)
		f.Movi(r4, 1)
		f.Shl(r4, r5)
		f.Xor(r8, r4)
		f.St(r9, 0, r8)
		f.Add(r10, r8)
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("gate")
		f.Label("iend")
		f.Addi(r13, -1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Ret()
	})
}

// h264ref: the Figure 5(c) outlier — the motion-estimation hot loop
// dispatches a tiny prediction-mode handler through a function table for
// every block, so the trace volume (TIP packets) is an order of
// magnitude above the other kernels (the paper measures ~90% more trace
// than the rest).
func specH264ref() *App {
	return specApp("h264ref", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.FuncTable("mode_tbl", []string{
			"m_dc", "m_h", "m_v", "m_diag", "m_dc2", "m_h2", "m_v2", "m_diag2",
		}, false)
		mk := func(name string, k int32) {
			f := b.Func(name, 1, false)
			f.Addi(r0, k)
			f.Movi(r8, 5)
			f.Shl(r0, r8)
			f.Movi(r8, 3)
			f.Shr(r0, r8)
			f.Ret()
		}
		mk("m_dc", 1)
		mk("m_h", 3)
		mk("m_v", 5)
		mk("m_diag", 7)
		mk("m_dc2", 11)
		mk("m_h2", 13)
		mk("m_v2", 17)
		mk("m_diag2", 19)

		f := b.Func("kernel", 1, false)
		f.Prologue(32)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0x1234)
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.Movi(r13, 0) // block
		f.Label("blk")
		f.Cmpi(r13, 512)
		f.Jcc(isa.GE, "iend")
		f.Mov(r8, r10)
		f.Movi(r5, 7)
		f.And(r8, r5)
		f.Movi(r5, 8)
		f.Mul(r8, r5)
		f.AddrOf(r6, "mode_tbl")
		f.Add(r6, r8)
		f.Ld(r6, r6, 0)
		f.Mov(r0, r10)
		f.St(fp, -16, r11)
		f.St(fp, -24, r13)
		f.CallR(r6) // one TIP every handful of instructions
		f.Ld(r11, fp, -16)
		f.Ld(r13, fp, -24)
		f.Mov(r10, r0)
		f.Addi(r10, 1)
		f.Addi(r13, 1)
		f.Jmp("blk")
		f.Label("iend")
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}

// lbm: lattice-Boltzmann stencil — pure streaming loads/stores.
func specLbm() *App {
	return specApp("lbm", []string{"libc", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("cells", 4098*8, false)
		f := b.Func("kernel", 1, false)
		f.Mov(r13, r0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Cmpi(r13, 0)
		f.Jcc(isa.LE, "done")
		f.AddrOf(r9, "cells")
		f.Addi(r9, 8)
		f.Movi(r6, 1)
		f.Label("cell")
		f.Cmpi(r6, 4097)
		f.Jcc(isa.GE, "iend")
		f.Ld(r8, r9, -8)
		f.Ld(r5, r9, 0)
		f.Ld(r4, r9, 8)
		f.Add(r8, r5)
		f.Add(r8, r4)
		f.Addi(r8, 1)
		f.Movi(r5, 3)
		f.Div(r8, r5)
		f.St(r9, 0, r8)
		f.Add(r10, r8)
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("cell")
		f.Label("iend")
		f.Addi(r13, -1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Ret()
	})
}

// sphinx3: acoustic scoring — dot-product loops with a per-frame
// codebook dispatch (sparse indirect calls).
func specSphinx3() *App {
	return specApp("sphinx3", []string{"libc", "libcrypt", "libfmt"}, func(b *asm.Builder) {
		b.DataSpace("feat", 256*8, false)
		f := b.Func("kernel", 1, false)
		f.Prologue(32)
		f.St(fp, -8, r0)
		f.Movi(r11, 0)
		f.Movi(r10, 0)
		f.Label("iter")
		f.Ld(r8, fp, -8)
		f.Cmp(r11, r8)
		f.Jcc(isa.GE, "done")
		f.St(fp, -16, r11)
		f.St(fp, -24, r10)
		// Dot-product-like accumulation over the feature vector.
		f.AddrOf(r9, "feat")
		f.Movi(r6, 0)
		f.Movi(r10, 0)
		f.Label("dot")
		f.Cmpi(r6, 256)
		f.Jcc(isa.GE, "score")
		f.Ld(r8, r9, 0)
		f.Add(r8, r6)
		f.St(r9, 0, r8)
		f.Mov(r5, r8)
		f.Mul(r5, r8)
		f.Add(r10, r5)
		f.Addi(r9, 8)
		f.Addi(r6, 1)
		f.Jmp("dot")
		f.Label("score")
		// Per-frame digest over the feature block (indirect dispatch in
		// libcrypt).
		f.AddrOf(r0, "feat")
		f.Movi(r1, 2048)
		f.Ld(r2, fp, -16)
		f.St(fp, -32, r10)
		f.Call("digest")
		f.Ld(r10, fp, -24)
		f.Ld(r8, fp, -32)
		f.Xor(r8, r0)
		f.Add(r10, r8)
		f.Ld(r11, fp, -16)
		f.Addi(r11, 1)
		f.Jmp("iter")
		f.Label("done")
		f.Mov(r0, r10)
		f.Epilogue()
	})
}
