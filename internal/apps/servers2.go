package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
)

// OpenSSH builds "sshd", the SSH-server analogue: a protocol state
// machine dispatched through a state function table (indirect call per
// line), a key-stretching authentication phase (repeated hmac_lite PLT
// calls), and a session phase running digest bursts per command.
//
// Protocol: "SSH-2.0-client" banner, then "auth <user> <pass>", then
// "run <n>" commands, then "bye".
func OpenSSH() *App {
	b := asm.NewModule("sshd").Needs("libc", "libcrypt", "libfmt", "libz", "libm", "libio", "libutil")
	b.DataSpace("line", 512, false)
	b.DataSpace("resp", 4096, false)
	b.DataSpace("work", 4096, false)
	b.DataWords("state", []uint64{0}, false)
	b.DataBytes("banner", []byte("SSH-2.0-flowguard\n"), false)
	b.DataBytes("k_auth", []byte("auth\x00"), false)
	b.DataBytes("k_run", []byte("run\x00"), false)
	b.DataBytes("s_deny", []byte("denied\n"), false)
	b.FuncTable("state_tbl", []string{"s_version", "s_auth", "s_session"}, false)

	emitReadLine(b)
	emitRenderBody(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Label("loop")
	main.AddrOf(r0, "line")
	main.Movi(r1, 511)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "shutdown")
	main.Mov(r11, r0)
	// Dispatch on the protocol state (indirect call).
	main.AddrOf(r9, "state")
	main.Ld(r8, r9, 0)
	main.Movi(r5, 3)
	main.Mod(r8, r5)
	main.Movi(r5, 8)
	main.Mul(r8, r5)
	main.AddrOf(r6, "state_tbl")
	main.Add(r6, r8)
	main.Ld(r6, r6, 0)
	main.AddrOf(r0, "line")
	main.Mov(r1, r11)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("shutdown")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	// s_version(line r0, len r1): any banner moves to auth.
	f := b.Func("s_version", 2, false)
	f.Prologue(0)
	f.AddrOf(r9, "state")
	f.Movi(r8, 1)
	f.St(r9, 0, r8)
	f.AddrOf(r0, "banner")
	f.Movi(r1, 18)
	f.Call("write_out")
	f.Epilogue()

	// s_auth(line r0, len r1): "auth user pass" with 200 stretching
	// rounds over the whole line.
	f = b.Func("s_auth", 2, false)
	f.Prologue(48)
	f.St(fp, -8, r0)
	f.St(fp, -16, r1)
	// Verify the verb prefix: line[0] == 'a'.
	f.Ldb(r8, r0, 0)
	f.Cmpi(r8, 'a')
	f.Jcc(isa.NE, "deny")
	f.Movi(r11, 0)
	f.Movi(r10, 0x5f) // running key
	f.Label("round")
	f.Cmpi(r11, 200)
	f.Jcc(isa.GE, "accept")
	f.St(fp, -24, r11)
	f.St(fp, -32, r10)
	f.Ld(r0, fp, -8)
	f.Ld(r1, fp, -16)
	f.Ld(r2, fp, -32)
	f.Call("hmac_lite")
	f.Ld(r11, fp, -24)
	f.Mov(r10, r0)
	f.Addi(r11, 1)
	f.Jmp("round")
	f.Label("accept")
	// Key exchange: modular exponentiation over the stretched secret
	// (libm via the PLT).
	f.St(fp, -24, r10)
	f.Movi(r0, 5)
	f.Mov(r1, r10)
	f.Movu64(r5, 0xffff)
	f.And(r1, r5)
	f.Movu64(r2, 0x7fffffff)
	f.Call("powmod")
	f.Ld(r10, fp, -24)
	f.Xor(r10, r0)
	f.AddrOf(r9, "state")
	f.Movi(r8, 2)
	f.St(r9, 0, r8)
	f.AddrOf(r0, "resp")
	f.AddrOf(r1, "k_auth")
	f.Mov(r2, r10)
	f.Call("fmt_kv")
	f.Mov(r1, r0)
	f.AddrOf(r0, "resp")
	f.Call("write_out")
	f.Epilogue()
	f.Label("deny")
	f.AddrOf(r0, "s_deny")
	f.Movi(r1, 7)
	f.Call("write_out")
	f.Epilogue()

	// s_session(line r0, len r1): "run <n>" digests n work blocks;
	// "bye" exits.
	f = b.Func("s_session", 2, false)
	f.Prologue(48)
	f.St(fp, -8, r0)
	f.Ldb(r8, r0, 0)
	f.Cmpi(r8, 'b')
	f.Jcc(isa.EQ, "bye")
	// n = atoi(line+4), clamped to 64.
	f.Ld(r0, fp, -8)
	f.Addi(r0, 4)
	f.Call("atoi")
	f.Cmpi(r0, 64)
	f.Jcc(isa.LE, "nok")
	f.Movi(r0, 64)
	f.Label("nok")
	f.St(fp, -16, r0)
	f.Movi(r11, 0)
	f.Movi(r10, 0)
	f.Label("blk")
	f.Ld(r8, fp, -16)
	f.Cmp(r11, r8)
	f.Jcc(isa.GE, "done")
	f.St(fp, -24, r11)
	f.St(fp, -32, r10)
	f.AddrOf(r0, "work")
	f.Movi(r1, 1024)
	f.Ld(r2, fp, -24)
	f.Call("render_body")
	f.AddrOf(r0, "work")
	f.Movi(r1, 1024)
	f.Ld(r2, fp, -24)
	f.Call("digest") // table-dispatched hash (indirect, in-library)
	f.Ld(r11, fp, -24)
	f.Ld(r10, fp, -32)
	f.Add(r10, r0)
	f.Addi(r11, 1)
	f.Jmp("blk")
	f.Label("done")
	f.AddrOf(r0, "resp")
	f.AddrOf(r1, "k_run")
	f.Mov(r2, r10)
	f.Call("fmt_kv")
	f.Mov(r1, r0)
	f.AddrOf(r0, "resp")
	f.Call("write_out")
	f.Epilogue()
	f.Label("bye")
	f.Movi(r0, 0)
	f.Call("do_exit")
	f.Halt()

	return &App{
		Name:     "openssh",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			in = append(in, "SSH-2.0-testclient\n"...)
			in = append(in, "auth alice s3cr3tpassphrase\n"...)
			for i := 0; i < scale; i++ {
				in = append(in, fmt.Sprintf("run %d\n", 1+r.Intn(6))...)
			}
			in = append(in, "bye\n"...)
			return in
		},
	}
}

// Exim builds "maild", the mail-server analogue: SMTP verbs through the
// usual string-table + function-table double dispatch, recursive-descent
// address validation (deep call/return chains), message accumulation in
// malloc'd memory, and delivery into the simulated filesystem.
//
// Protocol: HELO h / MAIL a@b.c / RCPT a@b.c / DATA line... . / QUIT.
func Exim() *App {
	b := asm.NewModule("maild").Needs("libc", "libcrypt", "libfmt", "libm", "libutil")
	b.DataSpace("line", 512, false)
	b.DataSpace("word", 16, false)
	b.DataSpace("resp", 4096, false)
	b.DataSpace("msg", 16384, false)
	b.DataWords("msg_len", []uint64{0}, false)
	b.DataWords("in_data", []uint64{0}, false)
	b.DataSpace("tv", 16, false)
	b.DataBytes("v_helo", []byte("HELO\x00"), false)
	b.DataBytes("v_mail", []byte("MAIL\x00"), false)
	b.DataBytes("v_rcpt", []byte("RCPT\x00"), false)
	b.DataBytes("v_data", []byte("DATA\x00"), false)
	b.DataBytes("v_quit", []byte("QUIT\x00"), false)
	b.DataBytes("k_ok", []byte("250\x00"), false)
	b.DataBytes("k_qd", []byte("queued\x00"), false)
	b.DataBytes("s_err", []byte("550 bad\n"), false)
	b.DataBytes("s_go", []byte("354 go\n"), false)
	b.DataBytes("mbox", []byte("mbox\x00"), false)
	b.FuncTable("verb_names", []string{"v_helo", "v_mail", "v_rcpt", "v_data", "v_quit"}, false)
	b.FuncTable("verb_tbl", []string{"h_helo", "h_mail", "h_rcpt", "h_data", "h_quit"}, false)

	emitReadLine(b)
	emitRenderBody(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Label("loop")
	main.AddrOf(r0, "line")
	main.Movi(r1, 511)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "shutdown")
	main.Push(r0) // line length
	// In DATA mode every line goes to the collector.
	main.AddrOf(r9, "in_data")
	main.Ld(r8, r9, 0)
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "verb")
	main.Pop(r1)
	main.AddrOf(r0, "line")
	main.Call("collect")
	main.Jmp("loop")
	main.Label("verb")
	// First word.
	main.AddrOf(r9, "line")
	main.AddrOf(r10, "word")
	main.Movi(r6, 0)
	main.Label("word")
	main.Cmpi(r6, 15)
	main.Jcc(isa.GE, "wdone")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, ' ')
	main.Jcc(isa.EQ, "wdone")
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "wdone")
	main.Stb(r10, 0, r8)
	main.Addi(r9, 1)
	main.Addi(r10, 1)
	main.Addi(r6, 1)
	main.Jmp("word")
	main.Label("wdone")
	main.Movi(r8, 0)
	main.Stb(r10, 0, r8)
	main.Push(r6)
	main.Movi(r11, 0)
	main.Label("match")
	main.Cmpi(r11, 5)
	main.Jcc(isa.GE, "nomatch")
	main.Movi(r5, 8)
	main.Mov(r8, r11)
	main.Mul(r8, r5)
	main.AddrOf(r9, "verb_names")
	main.Add(r9, r8)
	main.Ld(r1, r9, 0)
	main.AddrOf(r0, "word")
	main.Push(r11)
	main.Call("strcmp")
	main.Pop(r11)
	main.Cmpi(r0, 0)
	main.Jcc(isa.EQ, "found")
	main.Addi(r11, 1)
	main.Jmp("match")
	main.Label("nomatch")
	main.Pop(r6)
	main.Pop(r6)
	main.AddrOf(r0, "s_err")
	main.Movi(r1, 8)
	main.Call("write_out")
	main.Jmp("loop")
	main.Label("found")
	main.Pop(r6) // word length
	main.Pop(r8) // line length (unused by handlers)
	main.Movi(r5, 8)
	main.Mul(r11, r5)
	main.AddrOf(r9, "verb_tbl")
	main.Add(r9, r11)
	main.Ld(r9, r9, 0)
	main.AddrOf(r0, "line")
	main.Add(r0, r6)
	main.Addi(r0, 1)
	main.Mov(r6, r9)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("shutdown")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	respOK := func(f *asm.Func, key string, valueFrom isa.Reg) {
		f.Mov(r2, valueFrom)
		f.AddrOf(r0, "resp")
		f.AddrOf(r1, key)
		f.Call("fmt_kv")
		f.Mov(r1, r0)
		f.AddrOf(r0, "resp")
		f.Call("write_out")
	}

	// validate_label(p r0) -> next (pointer past the label) or 0 on
	// error: consumes [a-z0-9]+.
	f := b.Func("validate_label", 1, false)
	f.Mov(r9, r0)
	f.Movi(r10, 0)
	f.Label("loop")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, 'a')
	f.Jcc(isa.LT, "digit")
	f.Cmpi(r8, 'z')
	f.Jcc(isa.GT, "end")
	f.Jmp("ok")
	f.Label("digit")
	f.Cmpi(r8, '0')
	f.Jcc(isa.LT, "end")
	f.Cmpi(r8, '9')
	f.Jcc(isa.GT, "end")
	f.Label("ok")
	f.Addi(r9, 1)
	f.Addi(r10, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Cmpi(r10, 0)
	f.Jcc(isa.EQ, "bad")
	f.Mov(r0, r9)
	f.Ret()
	f.Label("bad")
	f.Movi(r0, 0)
	f.Ret()

	// validate_domain(p r0) -> 1/0: label ('.' label)* — recursive
	// descent, one frame per dotted component.
	f = b.Func("validate_domain", 1, false)
	f.Prologue(16)
	f.Call("validate_label")
	f.Cmpi(r0, 0)
	f.Jcc(isa.EQ, "bad")
	f.Ldb(r8, r0, 0)
	f.Cmpi(r8, '.')
	f.Jcc(isa.NE, "leaf")
	f.Addi(r0, 1)
	f.Call("validate_domain") // recurse on the next component
	f.Epilogue()
	f.Label("leaf")
	f.Movi(r0, 1)
	f.Epilogue()
	f.Label("bad")
	f.Movi(r0, 0)
	f.Epilogue()

	// validate_addr(p r0) -> 1/0: local '@' domain.
	f = b.Func("validate_addr", 1, false)
	f.Prologue(16)
	f.Call("validate_label")
	f.Cmpi(r0, 0)
	f.Jcc(isa.EQ, "bad")
	f.Ldb(r8, r0, 0)
	f.Cmpi(r8, '@')
	f.Jcc(isa.NE, "bad")
	f.Addi(r0, 1)
	f.Call("validate_domain")
	f.Epilogue()
	f.Label("bad")
	f.Movi(r0, 0)
	f.Epilogue()

	// h_helo(arg r0)
	f = b.Func("h_helo", 1, false)
	f.Prologue(16)
	f.Call("strlen")
	respOK(f, "k_ok", r0)
	f.Epilogue()

	// h_mail / h_rcpt(arg r0): validate the address.
	for _, name := range []string{"h_mail", "h_rcpt"} {
		f = b.Func(name, 1, false)
		f.Prologue(16)
		f.Call("validate_addr")
		f.Cmpi(r0, 0)
		f.Jcc(isa.EQ, "bad")
		respOK(f, "k_ok", r0)
		f.Epilogue()
		f.Label("bad")
		f.AddrOf(r0, "s_err")
		f.Movi(r1, 8)
		f.Call("write_out")
		f.Epilogue()
	}

	// h_data(arg r0): switch to DATA mode.
	f = b.Func("h_data", 1, false)
	f.Prologue(0)
	f.AddrOf(r9, "in_data")
	f.Movi(r8, 1)
	f.St(r9, 0, r8)
	f.AddrOf(r9, "msg_len")
	f.Movi(r8, 0)
	f.St(r9, 0, r8)
	f.AddrOf(r0, "s_go")
	f.Movi(r1, 7)
	f.Call("write_out")
	f.Epilogue()

	// collect(line r0, len r1): append the line to the message; a lone
	// "." delivers.
	f = b.Func("collect", 2, false)
	f.Prologue(64)
	f.St(fp, -8, r0)
	f.St(fp, -16, r1)
	f.Ldb(r8, r0, 0)
	f.Cmpi(r8, '.')
	f.Jcc(isa.NE, "append")
	f.Cmpi(r1, 1)
	f.Jcc(isa.EQ, "deliver")
	f.Label("append")
	f.AddrOf(r9, "msg_len")
	f.Ld(r10, r9, 0)
	// Cap the message well below the 16 KiB buffer (lines are up to 511 bytes).
	f.Cmpi(r10, 15000)
	f.Jcc(isa.GE, "full")
	f.AddrOf(r0, "msg")
	f.Add(r0, r10)
	f.Ld(r1, fp, -8)
	f.Ld(r2, fp, -16)
	f.Push(r10)
	f.Call("memcpy")
	f.Pop(r10)
	f.Ld(r8, fp, -16)
	f.Add(r10, r8)
	f.AddrOf(r9, "msg")
	f.Add(r9, r10)
	f.Movi(r8, '\n')
	f.Stb(r9, 0, r8)
	f.Addi(r10, 1)
	f.AddrOf(r9, "msg_len")
	f.St(r9, 0, r10)
	f.Label("full")
	f.Epilogue()
	f.Label("deliver")
	// Leave DATA mode, DKIM-sign (three hmac rounds over the whole
	// message), digest, and append to the mbox file.
	f.AddrOf(r9, "in_data")
	f.Movi(r8, 0)
	f.St(r9, 0, r8)
	f.Movi(r10, 0x51) // signing key
	f.Movi(r11, 0)
	f.Label("dkim")
	f.Cmpi(r11, 3)
	f.Jcc(isa.GE, "signed")
	f.St(fp, -40, r11)
	f.St(fp, -48, r10)
	f.AddrOf(r0, "msg")
	f.AddrOf(r9, "msg_len")
	f.Ld(r1, r9, 0)
	f.Ld(r2, fp, -48)
	f.Call("hmac_lite")
	f.Mov(r10, r0)
	f.Ld(r11, fp, -40)
	f.Addi(r11, 1)
	f.Jmp("dkim")
	f.Label("signed")
	f.AddrOf(r0, "msg")
	f.AddrOf(r9, "msg_len")
	f.Ld(r1, r9, 0)
	f.Movi(r2, 2)
	f.Call("digest")
	f.St(fp, -24, r0)
	// Timestamp the delivery: gettimeofday binds to the VDSO (the
	// loader's interposition precedence, §4.1), so this call exercises
	// the VDSO code path in live traces.
	f.AddrOf(r0, "tv")
	f.Call("gettimeofday")
	f.AddrOf(r9, "tv")
	f.Ld(r8, r9, 0)
	f.Ld(r5, fp, -24)
	f.Xor(r5, r8)
	f.St(fp, -24, r5)
	f.AddrOf(r0, "mbox")
	f.Call("open_file")
	f.St(fp, -32, r0)
	f.Ld(r0, fp, -32)
	f.AddrOf(r1, "msg")
	f.AddrOf(r9, "msg_len")
	f.Ld(r2, r9, 0)
	f.Call("write_fd") // endpoint
	f.Ld(r0, fp, -32)
	f.Call("close_fd")
	f.Ld(r8, fp, -24)
	respOK(f, "k_qd", r8)
	f.Epilogue()

	// h_quit(arg r0)
	f = b.Func("h_quit", 1, false)
	f.Movi(r0, 0)
	f.Call("do_exit")
	f.Halt()

	return &App{
		Name:     "exim",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			in = append(in, "HELO example.org\n"...)
			for i := 0; i < scale; i++ {
				in = append(in, fmt.Sprintf("MAIL user%d@mail.example%d.org\n", r.Intn(20), r.Intn(5))...)
				in = append(in, fmt.Sprintf("RCPT dst%d@deep.sub.domain.example.net\n", r.Intn(20))...)
				in = append(in, "DATA\n"...)
				for l := 0; l < 12+r.Intn(16); l++ {
					in = append(in, fmt.Sprintf("body line %02d lorem ipsum dolor sit amet consectetur adipiscing elit %016x\n", l, r.Int63())...)
				}
				in = append(in, ".\n"...)
			}
			in = append(in, "QUIT\n"...)
			return in
		},
	}
}
