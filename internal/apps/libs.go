package apps

import (
	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/module"
)

// LibCrypt builds the crypto-library analogue. Its digest() dispatches
// through a function-pointer table (indirect calls inside a library),
// and hmac_lite() calls back into libc across the PLT.
func LibCrypt() *module.Module {
	b := asm.NewModule("libcrypt").Needs("libc")

	// adler_lite(buf r0, n r1) -> h
	f := b.Func("adler_lite", 2, true)
	f.Mov(r9, r0)
	f.Movi(r10, 1) // a
	f.Movi(r11, 0) // b
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r9, 0)
	f.Add(r10, r8)
	f.Add(r11, r10)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Movi(r8, 16)
	f.Shl(r11, r8)
	f.Mov(r0, r11)
	f.Or(r0, r10)
	f.Ret()

	// djb_lite(buf r0, n r1) -> h
	f = b.Func("djb_lite", 2, true)
	f.Mov(r9, r0)
	f.Movi(r0, 5381)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Movi(r10, 33)
	f.Mul(r0, r10)
	f.Ldb(r8, r9, 0)
	f.Add(r0, r8)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// xor_lite(buf r0, n r1) -> h: rolling xor.
	f = b.Func("xor_lite", 2, true)
	f.Mov(r9, r0)
	f.Movi(r0, 0)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r9, 0)
	f.Xor(r0, r8)
	f.Movi(r10, 7)
	f.Shl(r0, r10)
	f.Movi(r10, 57)
	f.Shr(r0, r10)
	f.Xor(r0, r8)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// The dispatch table: a library-internal source of indirect calls.
	b.FuncTable("digest_tbl", []string{"adler_lite", "djb_lite", "xor_lite"}, false)

	// digest(buf r0, n r1, alg r2) -> h: dispatch through digest_tbl.
	f = b.Func("digest", 3, true)
	f.Movi(r8, 3)
	f.Mod(r2, r8)
	f.Movi(r8, 8)
	f.Mul(r2, r8)
	f.AddrOf(r6, "digest_tbl")
	f.Add(r6, r2)
	f.Ld(r6, r6, 0)
	f.CallR(r6)
	f.Ret()

	// hmac_lite(buf r0, n r1, key r2) -> h: inner hash via libc's
	// hash_fnv (PLT), mixed with the key.
	f = b.Func("hmac_lite", 3, true)
	f.Prologue(16)
	f.St(fp, -8, r2)
	f.Call("hash_fnv")
	f.Ld(r8, fp, -8)
	f.Xor(r0, r8)
	f.Movu64(r9, 0x9e3779b97f4a7c15)
	f.Mul(r0, r9)
	f.Epilogue()

	return mustAssemble(b)
}

// LibZ builds the compression-library analogue: byte-granular RLE plus a
// checksum, giving the utilities their inner loops.
func LibZ() *module.Module {
	b := asm.NewModule("libz")

	// rle_compress(dst r0, src r1, n r2) -> outLen
	f := b.Func("rle_compress", 3, true)
	f.Mov(r9, r0)  // out
	f.Mov(r10, r1) // in
	f.Movi(r6, 0)  // i
	f.Label("outer")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r10, 0) // current byte
	f.Movi(r11, 0)    // run length
	f.Label("run")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "flush")
	f.Cmpi(r11, 255)
	f.Jcc(isa.GE, "flush")
	f.Ldb(r5, r10, 0)
	f.Cmp(r5, r8)
	f.Jcc(isa.NE, "flush")
	f.Addi(r10, 1)
	f.Addi(r6, 1)
	f.Addi(r11, 1)
	f.Jmp("run")
	f.Label("flush")
	f.Stb(r9, 0, r11)
	f.Stb(r9, 1, r8)
	f.Addi(r9, 2)
	f.Jmp("outer")
	f.Label("done")
	f.Sub(r9, r0)
	f.Mov(r0, r9)
	f.Ret()

	// rle_decompress(dst r0, src r1, n r2) -> outLen
	f = b.Func("rle_decompress", 3, true)
	f.Mov(r9, r0)
	f.Mov(r10, r1)
	f.Movi(r6, 0)
	f.Label("outer")
	f.Cmp(r6, r2)
	f.Jcc(isa.GE, "done")
	f.Ldb(r11, r10, 0) // count
	f.Ldb(r8, r10, 1)  // byte
	f.Addi(r10, 2)
	f.Addi(r6, 2)
	f.Label("emit")
	f.Cmpi(r11, 0)
	f.Jcc(isa.LE, "outer")
	f.Stb(r9, 0, r8)
	f.Addi(r9, 1)
	f.Addi(r11, -1)
	f.Jmp("emit")
	f.Label("done")
	f.Sub(r9, r0)
	f.Mov(r0, r9)
	f.Ret()

	// checksum(buf r0, n r1) -> sum: 512-byte-block style byte sum (the
	// tar header checksum).
	f = b.Func("checksum", 2, true)
	f.Mov(r9, r0)
	f.Movi(r0, 0)
	f.Movi(r6, 0)
	f.Label("loop")
	f.Cmp(r6, r1)
	f.Jcc(isa.GE, "done")
	f.Ldb(r8, r9, 0)
	f.Add(r0, r8)
	f.Addi(r9, 1)
	f.Addi(r6, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	return mustAssemble(b)
}

// LibFmt builds the formatting-library analogue, calling into libc via
// the PLT (u2dec, memcpy, strlen).
func LibFmt() *module.Module {
	b := asm.NewModule("libfmt").Needs("libc")

	// fmt_copy(dst r0, src r1) -> len: strcpy returning the length.
	f := b.Func("fmt_copy", 2, true)
	f.Mov(r9, r0)
	f.Mov(r10, r1)
	f.Movi(r0, 0)
	f.Label("loop")
	f.Ldb(r8, r10, 0)
	f.Cmpi(r8, 0)
	f.Jcc(isa.EQ, "done")
	f.Stb(r9, 0, r8)
	f.Addi(r9, 1)
	f.Addi(r10, 1)
	f.Addi(r0, 1)
	f.Jmp("loop")
	f.Label("done")
	f.Ret()

	// fmt_num(dst r0, v r1) -> len: decimal rendering via libc u2dec.
	f = b.Func("fmt_num", 2, true)
	f.TailJmp("u2dec") // cross-module tail call through the PLT

	// fmt_kv(dst r0, key r1, v r2) -> len: "key=<v>\n".
	f = b.Func("fmt_kv", 3, true)
	f.Prologue(32)
	f.St(fp, -8, r0)  // dst
	f.St(fp, -16, r2) // v
	f.Mov(r10, r1)
	f.Mov(r1, r10)
	f.Call("fmt_copy") // dst <- key
	f.Mov(r11, r0)     // running length
	f.Ld(r9, fp, -8)
	f.Add(r9, r11)
	f.Movi(r8, '=')
	f.Stb(r9, 0, r8)
	f.Addi(r11, 1)
	f.Ld(r0, fp, -8)
	f.Add(r0, r11)
	f.Ld(r1, fp, -16)
	f.Call("fmt_num")
	f.Add(r11, r0)
	f.Ld(r9, fp, -8)
	f.Add(r9, r11)
	f.Movi(r8, '\n')
	f.Stb(r9, 0, r8)
	f.Addi(r11, 1)
	f.Mov(r0, r11)
	f.Epilogue()

	return mustAssemble(b)
}

// StdLibs returns the shared library set keyed by module name, ready for
// module.Load / kernelsim.Spawn. Applications name their DT_NEEDED
// subset; the loader pulls the transitive closure.
func StdLibs() map[string]*module.Module {
	return map[string]*module.Module{
		"libc":     LibC(),
		"libcrypt": LibCrypt(),
		"libz":     LibZ(),
		"libfmt":   LibFmt(),
		"libm":     LibM(),
		"libio":    LibIO(),
		"libutil":  LibUtil(),
	}
}
