package apps

import (
	"flowguard/internal/asm"
	"flowguard/internal/isa"
	"flowguard/internal/kernelsim"
)

// threadStack sizes each clone stack (data-section space; the signal
// frame and worker spills fit with a wide margin).
const threadStack = 512

// Threadd builds "threadd", the multi-threaded server workload of the
// preemptive-world scenarios (DESIGN.md §11): the main thread clones one
// or two worker threads — each with its own stack and a private argument
// — and then keeps serving stdin commands through an indirect-call
// dispatch table. Every thread crosses guarded write endpoints, so the
// checker races syscall checks from sibling threads against their
// demuxed per-thread streams. Worker threads finish with a raw exit
// syscall (a clone entry has no return address to ret to).
//
// Threads only execute under kernelsim.RunMulticore; elsewhere threadd
// degrades to its main thread, which is still a valid single-threaded
// server.
//
// Input: first byte's low bit picks 1 or 2 workers; each later byte
// selects a main-thread worker function (byte & 1).
func Threadd() *App {
	b := asm.NewModule("threadd").Needs("libc")
	b.DataSpace("ch", 8, false)
	b.DataSpace("out", 8, false)
	b.DataSpace("tout", 8, false)
	b.DataSpace("tstk0", threadStack, false)
	b.DataSpace("tstk1", threadStack, false)
	b.FuncTable("thr_tbl", []string{"tmain"}, false)
	b.FuncTable("work_tbl", []string{"w0", "w1"}, false)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Prologue(64)
	main.Movu64(r7, kernelsim.SysRead)
	main.Movi(r0, 0)
	main.AddrOf(r1, "ch")
	main.Movi(r2, 1)
	main.Syscall()
	main.Cmpi(r0, 1)
	main.Jcc(isa.LT, "fini")
	// clone(tmain, tstk0 top, 1)
	main.AddrOf(r6, "thr_tbl")
	main.Ld(r0, r6, 0)
	main.AddrOf(r1, "tstk0")
	main.Addi(r1, threadStack-8)
	main.Movi(r2, 1)
	main.Movu64(r7, kernelsim.SysClone)
	main.Syscall()
	main.AddrOf(r9, "ch")
	main.Ldb(r8, r9, 0)
	main.Movi(r5, 1)
	main.And(r8, r5)
	main.Cmpi(r8, 1)
	main.Jcc(isa.NE, "serve")
	// clone(tmain, tstk1 top, 2)
	main.AddrOf(r6, "thr_tbl")
	main.Ld(r0, r6, 0)
	main.AddrOf(r1, "tstk1")
	main.Addi(r1, threadStack-8)
	main.Movi(r2, 2)
	main.Movu64(r7, kernelsim.SysClone)
	main.Syscall()
	main.Label("serve")
	main.Movu64(r7, kernelsim.SysRead)
	main.Movi(r0, 0)
	main.AddrOf(r1, "ch")
	main.Movi(r2, 1)
	main.Syscall()
	main.Cmpi(r0, 1)
	main.Jcc(isa.LT, "fini")
	main.AddrOf(r9, "ch")
	main.Ldb(r8, r9, 0)
	main.Mov(r10, r8)
	main.Movi(r5, 1)
	main.And(r10, r5)
	main.Movi(r5, 8)
	main.Mul(r10, r5)
	main.AddrOf(r6, "work_tbl")
	main.Add(r6, r10)
	main.Ld(r6, r6, 0)
	main.Mov(r0, r8)
	main.CallR(r6)
	main.Jmp("serve")
	main.Label("fini")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	// tmain(arg r0): the clone entry. Runs a fixed number of mix+emit
	// rounds, each crossing a write endpoint, then exits the thread with
	// a raw exit syscall (clone entries have nowhere to return).
	t := b.Func("tmain", 1, false)
	t.Mov(r9, r0)
	t.Movi(r10, 5)
	t.Label("round")
	t.Cmpi(r10, 0)
	t.Jcc(isa.LE, "tdone")
	t.Movu64(r5, 0xff51afd7ed558ccd)
	t.Mul(r9, r5)
	t.Movi(r5, 9)
	t.Shr(r9, r5)
	t.AddrOf(r5, "tout")
	t.Stb(r5, 0, r9)
	t.Movi(r0, 1)
	t.AddrOf(r1, "tout")
	t.Movi(r2, 1)
	t.Movu64(r7, kernelsim.SysWrite)
	t.Syscall()
	t.Addi(r10, -1)
	t.Jmp("round")
	t.Label("tdone")
	t.Movi(r0, 0)
	t.Movu64(r7, kernelsim.SysExit)
	t.Syscall()
	t.Halt() // unreachable: exit never returns

	// Main-thread workers, same shape as the other servers' dispatch
	// targets.
	worker := func(name string, iters int32, mixer uint64) {
		w := b.Func(name, 1, false)
		w.Prologue(32)
		w.Mov(r9, r0)
		w.Movi(r10, iters)
		w.Label("spin")
		w.Cmpi(r10, 0)
		w.Jcc(isa.LE, "emit")
		w.Movu64(r5, mixer)
		w.Mul(r9, r5)
		w.Movi(r5, 13)
		w.Shr(r9, r5)
		w.Addi(r10, -1)
		w.Jmp("spin")
		w.Label("emit")
		w.AddrOf(r5, "out")
		w.Stb(r5, 0, r9)
		w.Movi(r0, 1)
		w.AddrOf(r1, "out")
		w.Movi(r2, 1)
		w.Movu64(r7, kernelsim.SysWrite)
		w.Syscall()
		w.Epilogue()
	}
	worker("w0", 3, 0x2545f4914f6cdd1d)
	worker("w1", 7, 0x9e3779b97f4a7c15)

	return &App{
		Name:     "threadd",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			n := 4 + scale
			in := make([]byte, 0, n)
			in = append(in, byte(r.Intn(256)))
			for i := 1; i < n; i++ {
				in = append(in, byte('a'+r.Intn(2)))
			}
			return in
		},
	}
}
