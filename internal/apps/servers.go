package apps

import (
	"fmt"

	"flowguard/internal/asm"
	"flowguard/internal/isa"
)

// Nginx builds "ngind", the web-server analogue of the paper's
// nginx-1.6.3 target: a request loop with two levels of indirect
// dispatch (method table, content-generator table), library calls across
// the PLT (libcrypt digest, libfmt header rendering, libc memcpy /
// write), and one write syscall (a guarded endpoint) per request.
//
// Request protocol (one per line, from stdin per the desock convention):
//
//	G <path>   GET: render a content-dependent body
//	P <n>      POST: allocate and ingest an n-byte payload
//	H <path>   HEAD: header only
//	<other>    400 path
func Nginx() *App {
	b := nginxBuilder("ngind", false)
	return &App{
		Name:     "nginx",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			paths := []string{"/index", "/static/logo", "/api/v1/users", "/about", "/health"}
			for i := 0; i < scale; i++ {
				switch r.Intn(10) {
				case 0:
					in = append(in, fmt.Sprintf("P %d\n", 64+r.Intn(1024))...)
				case 1:
					in = append(in, fmt.Sprintf("H %s\n", paths[r.Intn(len(paths))])...)
				case 2:
					in = append(in, "X junk-request\n"...)
				default:
					in = append(in, fmt.Sprintf("G %s%d\n", paths[r.Intn(len(paths))], r.Intn(100))...)
				}
			}
			return in
		},
	}
}

// Vulnd is ngind with the artificially implanted stack-overflow of
// §7.1.2: the POST handler copies the declared payload length into a
// 64-byte stack buffer without a bounds check. Benign inputs behave like
// nginx; a crafted P request smashes the saved return address.
func Vulnd() *App {
	b := nginxBuilder("vulnd", true)
	a := Nginx()
	a.Name = "vulnd"
	a.Exec = mustAssemble(b)
	a.MakeInput = func(scale int, seed int64) []byte {
		r := rng(seed)
		var in []byte
		paths := []string{"/index", "/static/logo", "/api/v1/users", "/about"}
		for i := 0; i < scale; i++ {
			switch r.Intn(8) {
			case 0:
				// Benign upload: the declared length matches the inline
				// payload and fits the 64-byte buffer.
				n := 8 + r.Intn(40)
				in = append(in, fmt.Sprintf("P %d\n", n)...)
				blob := make([]byte, n)
				for j := range blob {
					blob[j] = byte('a' + r.Intn(26))
				}
				in = append(in, blob...)
			case 1:
				in = append(in, fmt.Sprintf("H %s\n", paths[r.Intn(len(paths))])...)
			default:
				in = append(in, fmt.Sprintf("G %s%d\n", paths[r.Intn(len(paths))], r.Intn(100))...)
			}
		}
		return in
	}
	return a
}

const nginxBodyLen = 4096

func nginxBuilder(name string, vulnerable bool) *asm.Builder {
	b := asm.NewModule(name).Needs("libc", "libcrypt", "libfmt", "libz", "libm", "libio")
	b.DataSpace("req", 512, false)
	b.DataSpace("resp", 16384, false)
	b.DataSpace("body", 8192, false)
	b.DataSpace("db", 64*8, false)
	b.DataWords("db_len", []uint64{0}, false)
	b.DataBytes("k_len", []byte("len\x00"), false)
	b.DataBytes("k_head", []byte("head\x00"), false)
	b.DataBytes("k_post", []byte("stored\x00"), false)
	b.DataBytes("s_bad", []byte("bad request\n"), false)
	b.FuncTable("method_tbl", []string{"h_get", "h_post", "h_head", "h_bad"}, false)
	b.FuncTable("content_tbl", []string{"c_index", "c_static", "c_api", "c_err"}, false)

	emitReadLine(b)
	emitRenderBody(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	// Real servers enter request handlers under kilobytes of caller
	// frames; reserve a comparable region so handler frames are not
	// flush against the top of the stack.
	main.Prologue(512)
	main.Label("loop")
	main.AddrOf(r0, "req")
	main.Movi(r1, 511)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "shutdown")
	main.Mov(r11, r0) // length
	// Method dispatch index.
	main.AddrOf(r9, "req")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, 'G')
	main.Jcc(isa.NE, "n1")
	main.Movi(r10, 0)
	main.Jmp("disp")
	main.Label("n1")
	main.Cmpi(r8, 'P')
	main.Jcc(isa.NE, "n2")
	main.Movi(r10, 1)
	main.Jmp("disp")
	main.Label("n2")
	main.Cmpi(r8, 'H')
	main.Jcc(isa.NE, "n3")
	main.Movi(r10, 2)
	main.Jmp("disp")
	main.Label("n3")
	main.Movi(r10, 3)
	main.Label("disp")
	main.Movi(r5, 8)
	main.Mul(r10, r5)
	main.AddrOf(r6, "method_tbl")
	main.Add(r6, r10)
	main.Ld(r6, r6, 0)
	main.AddrOf(r0, "req")
	main.Mov(r1, r11)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("shutdown")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	// h_get(req r0, len r1)
	g := b.Func("h_get", 2, false)
	g.Prologue(48)
	g.St(fp, -8, r0)
	g.St(fp, -16, r1)
	// Hash the path: digest(req+2, len-2, len).
	g.Ld(r2, fp, -16)
	g.Ld(r0, fp, -8)
	g.Addi(r0, 2)
	g.Ld(r1, fp, -16)
	g.Addi(r1, -2)
	g.Cmpi(r1, 0)
	g.Jcc(isa.GE, "lenok")
	g.Movi(r1, 0)
	g.Label("lenok")
	g.Call("digest")
	g.St(fp, -24, r0) // path hash = body seed
	// Content dispatch on the route hash (the route-table lookup).
	g.Ld(r8, fp, -24)
	g.Movi(r5, 4)
	g.Mod(r8, r5)
	g.Movi(r5, 8)
	g.Mul(r8, r5)
	g.AddrOf(r6, "content_tbl")
	g.Add(r6, r8)
	g.Ld(r6, r6, 0)
	g.AddrOf(r0, "body")
	g.Movi(r1, nginxBodyLen)
	g.Ld(r2, fp, -24)
	g.CallR(r6)
	g.St(fp, -32, r0) // body length
	// Header.
	g.AddrOf(r0, "resp")
	g.AddrOf(r1, "k_len")
	g.Ld(r2, fp, -32)
	g.Call("fmt_kv")
	g.St(fp, -40, r0) // header length
	// Append body.
	g.AddrOf(r0, "resp")
	g.Ld(r8, fp, -40)
	g.Add(r0, r8)
	g.AddrOf(r1, "body")
	g.Ld(r2, fp, -32)
	g.Call("memcpy")
	// Single write per request: the guarded endpoint.
	g.AddrOf(r0, "resp")
	g.Ld(r1, fp, -40)
	g.Ld(r8, fp, -32)
	g.Add(r1, r8)
	g.Call("write_out")
	g.Epilogue()

	// h_post(req r0, len r1)
	p := b.Func("h_post", 2, false)
	if vulnerable {
		// The implanted bug (§7.1.2: "we artificially implant an obvious
		// vulnerability in nginx code"): the declared Content-Length is
		// read straight into a 64-byte stack buffer with no bounds
		// check, so the raw payload bytes following the request line
		// overwrite the saved frame pointer and return address.
		p.Prologue(96) // buffer at [fp-96, fp-32): 64 bytes
		p.St(fp, -8, r0)
		p.St(fp, -16, r1)
		p.Ld(r0, fp, -8)
		p.Addi(r0, 2)
		p.Call("atoi")
		p.St(fp, -24, r0) // n: attacker-declared, unchecked
		// read(0, stackbuf, n): the overflow.
		p.Movu64(r7, 0) // SysRead
		p.Movi(r0, 0)
		p.Mov(r1, fp)
		p.Addi(r1, -96)
		p.Ld(r2, fp, -24)
		p.Syscall()
		p.AddrOf(r0, "resp")
		p.AddrOf(r1, "k_post")
		p.Ld(r2, fp, -24)
		p.Call("fmt_kv")
		p.Mov(r1, r0)
		p.AddrOf(r0, "resp")
		p.Call("write_out")
		p.Epilogue()
	} else {
		p.Prologue(48)
		p.St(fp, -8, r0)
		p.St(fp, -16, r1)
		p.Ld(r0, fp, -8)
		p.Addi(r0, 2)
		p.Call("atoi")
		// Clamp to 4096.
		p.Cmpi(r0, 4096)
		p.Jcc(isa.LE, "szok")
		p.Movi(r0, 4096)
		p.Label("szok")
		p.St(fp, -24, r0)
		p.Call("malloc")
		p.St(fp, -32, r0)
		p.Mov(r0, r0)
		p.Ld(r0, fp, -32)
		p.Ld(r1, fp, -24)
		p.Ld(r2, fp, -24)
		p.Call("render_body")
		p.St(fp, -40, r0) // payload checksum
		// Record in the in-memory db.
		p.AddrOf(r9, "db_len")
		p.Ld(r8, r9, 0)
		p.Movi(r5, 63)
		p.And(r8, r5)
		p.Mov(r10, r8)
		p.Addi(r8, 1)
		p.AddrOf(r9, "db_len")
		p.St(r9, 0, r8)
		p.Movi(r5, 8)
		p.Mul(r10, r5)
		p.AddrOf(r9, "db")
		p.Add(r9, r10)
		p.Ld(r8, fp, -40)
		p.St(r9, 0, r8)
		// Respond.
		p.AddrOf(r0, "resp")
		p.AddrOf(r1, "k_post")
		p.Ld(r2, fp, -40)
		p.Call("fmt_kv")
		p.Mov(r1, r0)
		p.AddrOf(r0, "resp")
		p.Call("write_out")
		p.Epilogue()
	}

	// h_head(req r0, len r1)
	h := b.Func("h_head", 2, false)
	h.Prologue(16)
	h.St(fp, -8, r1)
	h.AddrOf(r0, "resp")
	h.AddrOf(r1, "k_head")
	h.Ld(r2, fp, -8)
	h.Call("fmt_kv")
	h.Mov(r1, r0)
	h.AddrOf(r0, "resp")
	h.Call("write_out")
	h.Epilogue()

	// h_bad(req r0, len r1)
	bad := b.Func("h_bad", 2, false)
	bad.Prologue(0)
	bad.AddrOf(r0, "s_bad")
	bad.Movi(r1, 12)
	bad.Call("write_out")
	bad.Epilogue()

	// Content generators (dst r0, n r1, seed r2) -> len.
	ci := b.Func("c_index", 3, false)
	ci.Prologue(16)
	ci.St(fp, -8, r1)
	ci.Call("render_body")
	ci.Ld(r0, fp, -8)
	ci.Epilogue()

	cs := b.Func("c_static", 3, false)
	cs.Prologue(16)
	cs.Movi(r8, 1)
	cs.Shr(r1, r8)
	cs.St(fp, -8, r1)
	cs.Call("render_body")
	cs.Ld(r0, fp, -8)
	cs.Epilogue()

	ca := b.Func("c_api", 3, false)
	ca.Prologue(16)
	ca.Mov(r1, r2)
	ca.AddrOf(r9, "k_len")
	ca.Mov(r2, r1)
	ca.Mov(r1, r9)
	ca.Mov(r9, r0)
	ca.Mov(r0, r9)
	ca.Call("fmt_kv")
	ca.Epilogue()

	ce := b.Func("c_err", 3, false)
	ce.Prologue(0)
	ce.Movi(r8, 'E')
	ce.Stb(r0, 0, r8)
	ce.Stb(r0, 1, r8)
	ce.Movi(r0, 2)
	ce.Epilogue()

	return b
}

// Vsftpd builds "ftpd", the FTP-server analogue: a verb loop matching
// commands against a string table and dispatching through a handler
// function table, with qsort-driven directory listing (indirect
// comparator calls) and file transfers through the simulated filesystem.
//
// Protocol: USER <u> / PASS <p> / LIST / RETR <f> / STOR <f> <n> / QUIT.
func Vsftpd() *App {
	b := asm.NewModule("ftpd").Needs("libc", "libcrypt", "libfmt")
	b.DataSpace("cmd", 256, false)
	b.DataSpace("word", 32, false)
	b.DataSpace("resp", 8192, false)
	b.DataSpace("xfer", 8192, false)
	b.DataSpace("listing", 64*8, false)
	b.DataSpace("user", 64, false)
	b.DataBytes("v_user", []byte("USER\x00"), false)
	b.DataBytes("v_pass", []byte("PASS\x00"), false)
	b.DataBytes("v_list", []byte("LIST\x00"), false)
	b.DataBytes("v_retr", []byte("RETR\x00"), false)
	b.DataBytes("v_stor", []byte("STOR\x00"), false)
	b.DataBytes("v_quit", []byte("QUIT\x00"), false)
	b.DataBytes("k_ok", []byte("ok\x00"), false)
	b.DataBytes("k_file", []byte("file\x00"), false)
	b.DataBytes("s_err", []byte("500 err\n"), false)
	b.FuncTable("verb_names", []string{"v_user", "v_pass", "v_list", "v_retr", "v_stor", "v_quit"}, false)
	b.FuncTable("verb_tbl", []string{"h_user", "h_pass", "h_list", "h_retr", "h_stor", "h_quit"}, false)

	emitReadLine(b)
	emitRenderBody(b)
	emitExitCall(b)

	main := b.Func("main", 0, true)
	b.SetEntry("main")
	main.Label("loop")
	main.AddrOf(r0, "cmd")
	main.Movi(r1, 255)
	main.Call("read_line")
	main.Cmpi(r0, 0)
	main.Jcc(isa.LT, "shutdown")
	// Extract the first word into "word".
	main.AddrOf(r9, "cmd")
	main.AddrOf(r10, "word")
	main.Movi(r6, 0)
	main.Label("word")
	main.Cmpi(r6, 31)
	main.Jcc(isa.GE, "wdone")
	main.Ldb(r8, r9, 0)
	main.Cmpi(r8, ' ')
	main.Jcc(isa.EQ, "wdone")
	main.Cmpi(r8, 0)
	main.Jcc(isa.EQ, "wdone")
	main.Stb(r10, 0, r8)
	main.Addi(r9, 1)
	main.Addi(r10, 1)
	main.Addi(r6, 1)
	main.Jmp("word")
	main.Label("wdone")
	main.Movi(r8, 0)
	main.Stb(r10, 0, r8)
	main.Push(r6) // word length survives the matching calls on the stack
	// Match against verb_names.
	main.Movi(r11, 0) // index
	main.Label("match")
	main.Cmpi(r11, 6)
	main.Jcc(isa.GE, "nomatch")
	main.Movi(r5, 8)
	main.Mov(r8, r11)
	main.Mul(r8, r5)
	main.AddrOf(r9, "verb_names")
	main.Add(r9, r8)
	main.Ld(r1, r9, 0)
	main.AddrOf(r0, "word")
	main.Push(r11)
	main.Call("strcmp")
	main.Pop(r11)
	main.Cmpi(r0, 0)
	main.Jcc(isa.EQ, "found")
	main.Addi(r11, 1)
	main.Jmp("match")
	main.Label("nomatch")
	main.Pop(r6)
	main.AddrOf(r0, "s_err")
	main.Movi(r1, 8)
	main.Call("write_out")
	main.Jmp("loop")
	main.Label("found")
	main.Pop(r6) // word length
	// Dispatch: handler(argptr r0) with argptr = cmd + wordlen + 1.
	main.Movi(r5, 8)
	main.Mul(r11, r5)
	main.AddrOf(r9, "verb_tbl")
	main.Add(r9, r11)
	main.Ld(r9, r9, 0)
	main.AddrOf(r0, "cmd")
	main.Add(r0, r6)
	main.Addi(r0, 1)
	main.Mov(r6, r9)
	main.CallR(r6)
	main.Jmp("loop")
	main.Label("shutdown")
	main.Movi(r0, 0)
	main.Call("do_exit")
	main.Halt()

	respOK := func(f *asm.Func, valueFrom isa.Reg) {
		f.Mov(r2, valueFrom)
		f.AddrOf(r0, "resp")
		f.AddrOf(r1, "k_ok")
		f.Call("fmt_kv")
		f.Mov(r1, r0)
		f.AddrOf(r0, "resp")
		f.Call("write_out")
	}

	// h_user(arg r0): remember the user name.
	f := b.Func("h_user", 1, false)
	f.Prologue(16)
	f.AddrOf(r9, "user")
	f.Mov(r1, r0)
	f.Mov(r0, r9)
	f.Call("fmt_copy")
	respOK(f, r0)
	f.Epilogue()

	// h_pass(arg r0): 50 rounds of hmac key stretching.
	f = b.Func("h_pass", 1, false)
	f.Prologue(32)
	f.St(fp, -8, r0)
	f.Call("strlen")
	f.St(fp, -16, r0)
	f.Movi(r11, 0)
	f.Movi(r10, 42) // key
	f.Label("round")
	f.Cmpi(r11, 50)
	f.Jcc(isa.GE, "done")
	f.St(fp, -24, r11)
	f.St(fp, -32, r10)
	f.Ld(r0, fp, -8)
	f.Ld(r1, fp, -16)
	f.Ld(r2, fp, -32)
	f.Call("hmac_lite")
	f.Ld(r11, fp, -24)
	f.Mov(r10, r0)
	f.Addi(r11, 1)
	f.Jmp("round")
	f.Label("done")
	respOK(f, r10)
	f.Epilogue()

	// h_list(arg r0): hash 16 synthetic names, qsort them with the libc
	// comparator (indirect calls), respond with the first entry.
	f = b.Func("h_list", 1, false)
	f.Prologue(32)
	f.Movi(r11, 0)
	f.Label("fill")
	f.Cmpi(r11, 16)
	f.Jcc(isa.GE, "sort")
	f.St(fp, -8, r11)
	f.AddrOf(r0, "word")
	f.Movi(r1, 8)
	f.Mov(r2, r11)
	f.Call("render_body")
	f.Ld(r11, fp, -8)
	f.AddrOf(r9, "listing")
	f.Mov(r8, r11)
	f.Movi(r5, 8)
	f.Mul(r8, r5)
	f.Add(r9, r8)
	f.St(r9, 0, r0)
	f.Addi(r11, 1)
	f.Jmp("fill")
	f.Label("sort")
	f.AddrOf(r0, "listing")
	f.Movi(r1, 16)
	f.AddrOf(r2, "cmp_u64")
	f.Call("qsort")
	f.AddrOf(r9, "listing")
	f.Ld(r8, r9, 0)
	respOK(f, r8)
	f.Epilogue()

	// h_retr(arg r0): open the named file, read it, checksum, respond.
	f = b.Func("h_retr", 1, false)
	f.Prologue(32)
	f.St(fp, -24, r0)
	f.Call("open_file")
	f.St(fp, -8, r0) // fd
	// read(fd, xfer, 8192)
	f.Movu64(r7, 0) // SysRead
	f.Ld(r0, fp, -8)
	f.AddrOf(r1, "xfer")
	f.Movi(r2, 8192)
	f.Syscall()
	f.St(fp, -16, r0) // n
	// A file nobody stored yet is materialized from the content store
	// (4 KiB), like a CGI-backed listing.
	f.Cmpi(r0, 0)
	f.Jcc(isa.GT, "have")
	f.Ld(r2, fp, -24)
	f.AddrOf(r0, "xfer")
	f.Movi(r1, 4096)
	f.Call("render_body")
	f.Movi(r8, 4096)
	f.St(fp, -16, r8)
	f.Label("have")
	f.AddrOf(r0, "xfer")
	f.Ld(r1, fp, -16)
	f.Movi(r2, 1)
	f.Call("digest")
	f.St(fp, -24, r0)
	f.Ld(r0, fp, -8)
	f.Call("close_fd")
	f.Ld(r8, fp, -24)
	respOK(f, r8)
	f.Epilogue()

	// h_stor(arg r0): "name n" — generate n bytes and store them.
	f = b.Func("h_stor", 1, false)
	f.Prologue(48)
	f.St(fp, -8, r0)
	// Split: find the space, terminate the name.
	f.Mov(r9, r0)
	f.Label("sp")
	f.Ldb(r8, r9, 0)
	f.Cmpi(r8, 0)
	f.Jcc(isa.EQ, "nolen")
	f.Cmpi(r8, ' ')
	f.Jcc(isa.EQ, "split")
	f.Addi(r9, 1)
	f.Jmp("sp")
	f.Label("split")
	f.Movi(r8, 0)
	f.Stb(r9, 0, r8)
	f.Addi(r9, 1)
	f.Mov(r0, r9)
	f.Call("atoi")
	f.Jmp("have")
	f.Label("nolen")
	f.Movi(r0, 64)
	f.Label("have")
	f.Cmpi(r0, 8192)
	f.Jcc(isa.LE, "szok")
	f.Movi(r0, 8192)
	f.Label("szok")
	f.St(fp, -16, r0)
	f.AddrOf(r0, "xfer")
	f.Ld(r1, fp, -16)
	f.Ld(r2, fp, -16)
	f.Call("render_body")
	f.Ld(r0, fp, -8)
	f.Call("open_file")
	f.St(fp, -24, r0)
	f.Ld(r0, fp, -24)
	f.AddrOf(r1, "xfer")
	f.Ld(r2, fp, -16)
	f.Call("write_fd") // endpoint
	f.Ld(r0, fp, -24)
	f.Call("close_fd")
	f.Ld(r8, fp, -16)
	respOK(f, r8)
	f.Epilogue()

	// h_quit(arg r0): exit.
	f = b.Func("h_quit", 1, false)
	f.Movi(r0, 0)
	f.Call("do_exit")
	f.Halt()

	return &App{
		Name:     "vsftpd",
		Exec:     mustAssemble(b),
		Libs:     StdLibs(),
		VDSO:     VDSO(),
		Category: "server",
		MakeInput: func(scale int, seed int64) []byte {
			r := rng(seed)
			var in []byte
			in = append(in, "USER alice\nPASS hunter2secret\n"...)
			for i := 0; i < scale; i++ {
				switch r.Intn(4) {
				case 0:
					in = append(in, "LIST\n"...)
				case 1:
					in = append(in, fmt.Sprintf("RETR file%d.txt\n", r.Intn(8))...)
				case 2:
					in = append(in, fmt.Sprintf("STOR up%d.bin %d\n", r.Intn(8), 256+r.Intn(2048))...)
				default:
					in = append(in, fmt.Sprintf("RETR readme%d\n", r.Intn(4))...)
				}
			}
			in = append(in, "QUIT\n"...)
			return in
		},
	}
}
