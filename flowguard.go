// Package flowguard is the public API of the FlowGuard reproduction: a
// transparent control-flow-integrity system that checks Intel-Processor-
// Trace-style control-flow traces against an offline-built,
// credit-labeled control-flow graph (Liu et al., "Transparent and
// Efficient CFI Enforcement with Intel Processor Trace", HPCA 2017).
//
// The API mirrors the paper's pipeline:
//
//	w, _  := flowguard.LoadWorkload("nginx")      // a protected binary + libs
//	sys, _ := flowguard.Analyze(w)                // O-CFG -> ITC-CFG (offline)
//	sys.TrainGenerated(8, 30, 1)                  // fuzzing-like training
//	out, _ := sys.Run(w.Input(30, 2))             // protected execution
//	fmt.Println(out.OverheadPct, out.Violations)
//
// Attacks against the deliberately vulnerable server validate
// enforcement:
//
//	v, _   := flowguard.LoadWorkload("vulnd")
//	sys, _ := flowguard.Analyze(v)
//	sys.TrainGenerated(6, 20, 1)
//	payload, _ := flowguard.AttackPayload(flowguard.AttackROP, v)
//	out, _ := sys.Run(payload)                    // out.Killed == true
//
// Everything underneath — the synthetic ISA, the CPU emulator, the IPT
// packet model and decoders, the static analyzer, the fuzzer and the
// kernel model — lives in internal packages; this package is the stable
// surface.
package flowguard

import (
	"fmt"
	"io"
	"time"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/cfg"
	"flowguard/internal/fuzz"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

// Workload is a protected program: an executable with its shared
// libraries, VDSO and a deterministic input generator.
type Workload struct {
	app *apps.App
}

// Workloads lists the built-in workload names: the four servers of
// Table 4, the four utilities of Figure 5(b), the twelve SPEC-like
// kernels of Figure 5(c), and "vulnd" (the deliberately vulnerable
// server of §7.1.2).
func Workloads() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return append(names, "vulnd")
}

// LoadWorkload returns a built-in workload by name.
func LoadWorkload(name string) (*Workload, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Workload{app: a}, nil
}

// Name returns the workload name.
func (w *Workload) Name() string { return w.app.Name }

// Category returns "server", "utility" or "spec".
func (w *Workload) Category() string { return w.app.Category }

// Input generates a deterministic stdin workload of roughly linear size
// in scale.
func (w *Workload) Input(scale int, seed int64) []byte {
	return w.app.MakeInput(scale, seed)
}

// DegradedMode selects the guard's fail behavior when a trace window
// cannot be verified — overflow, unattributable gap, grammar-level
// corruption — or when an overloaded checker pool sheds the check (the
// §7.1.2 worst cases).
type DegradedMode uint8

// Degraded-mode policies. The zero value is FailClosed.
const (
	// FailClosed treats any unverifiable window exactly like a detected
	// violation: security preserved, availability sacrificed.
	FailClosed DegradedMode = iota
	// FailOpen lets the endpoint proceed unverified (counted in
	// Outcome.FailOpens); records that survived decoding are still
	// checked best-effort, so definite violations among them fire.
	FailOpen
	// SlowPathRetry re-snapshots the trace buffer and retries a
	// full-precision decode from successive sync points before giving
	// up and failing closed.
	SlowPathRetry
)

func (m DegradedMode) String() string { return guard.DegradedMode(m).String() }

func (m DegradedMode) internal() guard.DegradedMode {
	switch m {
	case FailOpen:
		return guard.FailOpen
	case SlowPathRetry:
		return guard.SlowPathRetry
	default:
		return guard.FailClosed
	}
}

// Policy holds the runtime-protection knobs of §7.1.1.
type Policy struct {
	// PktCount is the minimum number of TIP packets checked per
	// endpoint trigger (the paper's lower bound is 30).
	PktCount int
	// CredRatio in [0,1]: the fraction of checked edges that must be
	// credibly trained for the fast path to decide alone; 1.0 sends any
	// low-credit edge to the slow path (the paper's setting).
	CredRatio float64
	// RequireModuleStride demands the window span multiple modules with
	// at least one packet in the executable.
	RequireModuleStride bool
	// HWDecoder enables the §6 dedicated-hardware-decoder cost model.
	HWDecoder bool
	// CredMinCount raises the high-credit bar to edges observed at least
	// this many times during training (multi-level credits, §4.3);
	// 0 or 1 is the paper's binary labeling.
	CredMinCount uint32
	// PathSensitive additionally matches trained consecutive-edge pairs
	// (the §7.1.2 future-work extension; stronger, more slow paths).
	PathSensitive bool
	// CheckOnPMI also checks whenever the trace buffer fills — the
	// worst-case endpoint fallback against endpoint-pruning attacks.
	CheckOnPMI bool
	// OnDegraded selects the response to unverifiable trace windows and
	// shed checks; the zero value fails closed.
	OnDegraded DegradedMode
	// RetryMax bounds SlowPathRetry recovery attempts per check
	// (0 = the guard's default).
	RetryMax int
}

// DefaultPolicy returns the configuration the paper evaluates.
func DefaultPolicy() Policy {
	return Policy{PktCount: 30, CredRatio: 1.0, RequireModuleStride: true}
}

func (p Policy) internal() guard.Policy {
	g := guard.DefaultPolicy()
	if p.PktCount > 0 {
		g.PktCount = p.PktCount
	}
	if p.CredRatio > 0 {
		g.CredRatio = p.CredRatio
	}
	g.RequireModuleStride = p.RequireModuleStride
	g.HWDecoder = p.HWDecoder
	g.CredMinCount = p.CredMinCount
	g.PathSensitive = p.PathSensitive
	g.CheckOnPMI = p.CheckOnPMI
	g.OnDegraded = p.OnDegraded.internal()
	g.RetryMax = p.RetryMax
	return g
}

// CFGStats summarizes the offline analysis (Table 4's columns).
type CFGStats struct {
	Functions     int
	BasicBlocks   int
	Libraries     int
	OCFGAIA       float64
	ITCNodes      int
	ITCEdges      int
	ITCAIA        float64
	ITCAIAWithTNT float64
	FineAIA       float64
	// CredRatio is the trained fraction of ITC edges.
	CredRatio float64
	// MemoryBytes estimates the labeled graph's resident size.
	MemoryBytes uint64
}

// System is an analyzed (and optionally trained) protection context for
// one workload. It is not safe for concurrent use.
type System struct {
	w    *Workload
	ocfg *cfg.Graph
	ig   *itc.Graph
}

// Analyze runs the offline phase: load the binaries at their (fixed)
// bases, build the conservative O-CFG with the TypeArmor-style analyses,
// and reconstruct the IPT-compatible ITC-CFG (§4.1, §4.2).
func Analyze(w *Workload) (*System, error) {
	as, err := w.app.Load()
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(as)
	if err != nil {
		return nil, err
	}
	return &System{w: w, ocfg: g, ig: itc.FromCFG(g)}, nil
}

const ctlTrace = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

// TrainWithInputs replays the given inputs under the IPT model and
// labels the observed ITC-CFG edges with credits and TNT signatures
// (§4.3 step 3).
func (s *System) TrainWithInputs(inputs ...[]byte) error {
	for _, in := range inputs {
		k := kernelsim.New()
		p, err := s.w.app.Spawn(k, in)
		if err != nil {
			return err
		}
		tr := ipt.NewTracer(ipt.NewToPA(64 << 20))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctlTrace); err != nil {
			return err
		}
		p.CPU.Branch = tr
		if _, err := k.Run(p, 500_000_000); err != nil {
			return err
		}
		tr.Flush()
		evs, err := ipt.DecodeFast(tr.Out.Snapshot())
		if err != nil {
			return err
		}
		s.ig.ObserveWindow(ipt.ExtractTIPs(evs))
	}
	s.ig.RebuildCache()
	return nil
}

// TrainGenerated trains with `runs` differently-seeded generated
// workloads of the given scale.
func (s *System) TrainGenerated(runs, scale int, seed int64) error {
	var inputs [][]byte
	for i := 0; i < runs; i++ {
		inputs = append(inputs, s.w.Input(scale, seed+int64(i)))
	}
	return s.TrainWithInputs(inputs...)
}

// FuzzStats reports a training campaign (§4.3 steps 1-2).
type FuzzStats struct {
	Execs      int
	CorpusSize int
	Paths      int
}

// TrainWithFuzzer runs an AFL-style coverage-oriented campaign from the
// seed inputs, then replays the resulting corpus as training data — the
// full dynamic-training pipeline of §4.3.
func (s *System) TrainWithFuzzer(execs int, seeds [][]byte) (FuzzStats, error) {
	a := s.w.app
	exec := func(input []byte, cov []byte) error {
		k := kernelsim.New()
		p, err := a.Spawn(k, input)
		if err != nil {
			return err
		}
		p.CPU.Branch = fuzz.CoverageSink(cov)
		_, err = k.Run(p, 3_000_000)
		return err
	}
	f := fuzz.New(exec, seeds, fuzz.DefaultConfig())
	f.Run(execs)
	if err := s.TrainWithInputs(f.Corpus()...); err != nil {
		return FuzzStats{}, err
	}
	return FuzzStats{Execs: f.Execs, CorpusSize: len(f.Corpus()), Paths: f.CoveredSlots()}, nil
}

// Stats returns the analysis statistics.
func (s *System) Stats() CFGStats {
	st := s.ocfg.ComputeStats()
	cs := s.ig.Credits()
	return CFGStats{
		Functions:     len(s.ocfg.Funcs),
		BasicBlocks:   st.ExecBlocks + st.LibBlocks,
		Libraries:     st.Libraries,
		OCFGAIA:       st.AIA,
		ITCNodes:      s.ig.NumNodes(),
		ITCEdges:      s.ig.Edges,
		ITCAIA:        s.ig.AIA(),
		ITCAIAWithTNT: s.ig.AIAWithTNT(),
		FineAIA:       itc.FineGrainedAIA(s.ocfg),
		CredRatio:     cs.Ratio,
		MemoryBytes:   s.ig.MemoryBytes(),
	}
}

// Breakdown is the Figure 5 overhead decomposition, in percent of the
// baseline execution cycles.
type Breakdown struct {
	Trace, Decode, Check, Other float64
}

// Outcome describes one protected execution.
type Outcome struct {
	// Exited/ExitCode describe a clean finish; Killed a CFI kill.
	Exited   bool
	ExitCode int
	Killed   bool
	// Violations lists the kernel module's reports.
	Violations []string
	// Stdout is the process output.
	Stdout []byte
	// Checks / SlowChecks count endpoint flow checks.
	Checks, SlowChecks uint64
	// DegradedChecks counts checks resolved under Policy.OnDegraded
	// (damaged trace windows or shed pooled checks); FailOpens and
	// FailClosures split them by outcome, Retries counts SlowPathRetry
	// recovery attempts, and Shed counts checks an overloaded checker
	// pool refused — every shed is policy-resolved and lands in one of
	// the other counters, never dropped silently.
	DegradedChecks, FailOpens, FailClosures, Retries, Shed uint64
	// CredRatio is the runtime fraction of credible edges.
	CredRatio float64
	// OverheadPct is the total protection overhead against the same
	// run's execution cycles, per the calibrated cycle model.
	OverheadPct float64
	// Parts decomposes the overhead.
	Parts Breakdown
}

// Run executes the workload on the input under full protection with the
// default policy.
func (s *System) Run(input []byte) (*Outcome, error) {
	return s.RunWithPolicy(input, DefaultPolicy())
}

// RunWithPolicy executes the workload under the given policy.
func (s *System) RunWithPolicy(input []byte, pol Policy) (*Outcome, error) {
	k := kernelsim.New()
	p, err := s.w.app.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	km := guard.InstallModule(k)
	g, err := km.Protect(p, s.ocfg, s.ig, pol.internal())
	if err != nil {
		return nil, err
	}
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Exited:         st.Exited,
		ExitCode:       st.Code,
		Killed:         st.Killed,
		Stdout:         p.Stdout,
		Checks:         g.Stats.Checks,
		SlowChecks:     g.Stats.SlowChecks,
		DegradedChecks: g.Stats.DegradedChecks,
		FailOpens:      g.Stats.FailOpens,
		FailClosures:   g.Stats.FailClosures,
		Retries:        g.Stats.Retries,
		Shed:           g.Stats.Shed,
		CredRatio:      g.Stats.CredRatioRuntime(),
	}
	for _, rep := range km.Reports {
		out.Violations = append(out.Violations, rep.String())
	}
	base := p.CPU.CycleCount
	if base > 0 {
		b := float64(base)
		out.Parts = Breakdown{
			Trace:  100 * float64(g.Tracer.Cycles()) / b,
			Decode: 100 * float64(g.Stats.DecodeCycles) / b,
			Check:  100 * float64(g.Stats.CheckCycles+g.Stats.SlowCycles) / b,
			Other:  100 * float64(g.Stats.OtherCycles) / b,
		}
		out.OverheadPct = out.Parts.Trace + out.Parts.Decode + out.Parts.Check + out.Parts.Other
	}
	return out, nil
}

// MultiOutcome describes a parallel multi-process protected run.
type MultiOutcome struct {
	// Outcomes holds one entry per input process, in input order.
	Outcomes []*Outcome
	// Checks / SlowChecks aggregate the per-process flow checks.
	Checks, SlowChecks uint64
	// DegradedChecks, FailOpens, FailClosures, Retries and Shed
	// aggregate the per-process degraded-mode accounting (see Outcome).
	DegradedChecks, FailOpens, FailClosures, Retries, Shed uint64
	// Violations aggregates every kernel-module report.
	Violations []string
	// Workers is the checker-pool concurrency bound used.
	Workers int
	// Elapsed is the wall time of the whole parallel run.
	Elapsed time.Duration
	// CheckBusy is the summed wall time spent inside flow checks across
	// all processes; with effective parallelism it exceeds the checks'
	// contribution to Elapsed (that surplus is the §6 offloading win).
	CheckBusy time.Duration
	// CheckWait is the summed time checks queued for a pool slot.
	CheckWait time.Duration
}

// RunMulti executes one protected process per input, all within a single
// kernel, running concurrently — the paper's §6 multi-core deployment:
// every process gets its own trace unit and ToPA table, and flow checks
// for different processes proceed in parallel on up to `workers` checker
// cores (a guard.CheckPool bounds them). The processes share one
// slow-path approval cache, so a clean slow-path verdict in any process
// serves every sibling's fast path. workers <= 0 means one checker per
// process.
func (s *System) RunMulti(inputs [][]byte, pol Policy, workers int) (*MultiOutcome, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("flowguard: RunMulti needs at least one input")
	}
	if workers <= 0 {
		workers = len(inputs)
	}
	k := kernelsim.New()
	km := guard.InstallModule(k)
	pool := guard.NewCheckPool(workers)
	km.UsePool(pool)
	shared := guard.NewApprovalCache()
	procs := make([]*kernelsim.Process, len(inputs))
	guards := make([]*guard.Guard, len(inputs))
	for i, in := range inputs {
		p, err := s.w.app.Spawn(k, in)
		if err != nil {
			return nil, err
		}
		g, err := km.Protect(p, s.ocfg, s.ig, pol.internal())
		if err != nil {
			return nil, err
		}
		g.ShareApprovals(shared)
		procs[i], guards[i] = p, g
	}
	t0 := time.Now()
	sts, err := k.RunParallel(procs, 500_000_000, 0)
	if err != nil {
		return nil, err
	}
	mo := &MultiOutcome{Workers: workers, Elapsed: time.Since(t0)}
	reports := km.ReportsSnapshot()
	var agg guard.Stats
	for i, p := range procs {
		g := guards[i]
		o := &Outcome{
			Exited:         sts[i].Exited,
			ExitCode:       sts[i].Code,
			Killed:         sts[i].Killed,
			Stdout:         p.Stdout,
			Checks:         g.Stats.Checks,
			SlowChecks:     g.Stats.SlowChecks,
			DegradedChecks: g.Stats.DegradedChecks,
			FailOpens:      g.Stats.FailOpens,
			FailClosures:   g.Stats.FailClosures,
			Retries:        g.Stats.Retries,
			Shed:           g.Stats.Shed,
			CredRatio:      g.Stats.CredRatioRuntime(),
		}
		for _, rep := range reports {
			if rep.PID == p.PID {
				o.Violations = append(o.Violations, rep.String())
			}
		}
		if base := p.CPU.CycleCount; base > 0 {
			b := float64(base)
			o.Parts = Breakdown{
				Trace:  100 * float64(g.Tracer.Cycles()) / b,
				Decode: 100 * float64(g.Stats.DecodeCycles) / b,
				Check:  100 * float64(g.Stats.CheckCycles+g.Stats.SlowCycles) / b,
				Other:  100 * float64(g.Stats.OtherCycles) / b,
			}
			o.OverheadPct = o.Parts.Trace + o.Parts.Decode + o.Parts.Check + o.Parts.Other
		}
		mo.Outcomes = append(mo.Outcomes, o)
		agg.Merge(&g.Stats)
	}
	mo.Checks, mo.SlowChecks = agg.Checks, agg.SlowChecks
	mo.DegradedChecks, mo.FailOpens, mo.FailClosures = agg.DegradedChecks, agg.FailOpens, agg.FailClosures
	mo.Retries, mo.Shed = agg.Retries, agg.Shed
	for _, rep := range reports {
		mo.Violations = append(mo.Violations, rep.String())
	}
	ps := pool.Snapshot()
	mo.CheckBusy, mo.CheckWait = ps.Busy, ps.Wait
	return mo, nil
}

// RunUnprotected executes the workload with no tracing or checking and
// returns its stdout (for functional comparisons).
func RunUnprotected(w *Workload, input []byte) ([]byte, error) {
	k := kernelsim.New()
	p, err := w.app.Spawn(k, input)
	if err != nil {
		return nil, err
	}
	st, err := k.Run(p, 500_000_000)
	if err != nil {
		return nil, err
	}
	if !st.Exited {
		return p.Stdout, fmt.Errorf("flowguard: workload %s: %v", w.Name(), st)
	}
	return p.Stdout, nil
}

// SaveTrained writes the labeled ITC-CFG (the offline phase's
// distributable artifact) to w; LoadTrained restores it into an analyzed
// system, replacing any prior training.
func (s *System) SaveTrained(w io.Writer) error { return s.ig.Encode(w) }

// LoadTrained replaces the system's labeled graph with one previously
// written by SaveTrained. The graph must come from the same binaries:
// a shape mismatch with the freshly analyzed graph is rejected.
func (s *System) LoadTrained(r io.Reader) error {
	g, err := itc.Decode(r)
	if err != nil {
		return err
	}
	if g.NumNodes() != s.ig.NumNodes() || g.Edges != s.ig.Edges {
		return fmt.Errorf("flowguard: trained graph does not match the analyzed binaries (|V|=%d/%d |E|=%d/%d)",
			g.NumNodes(), s.ig.NumNodes(), g.Edges, s.ig.Edges)
	}
	s.ig = g
	return nil
}

// AttackKind selects one of the §7.1.2 payload builders.
type AttackKind string

// The implemented attacks.
const (
	AttackROP             AttackKind = "rop"
	AttackSROP            AttackKind = "srop"
	AttackRet2Lib         AttackKind = "ret2lib"
	AttackHistoryFlush    AttackKind = "history-flush"
	AttackEndpointPruning AttackKind = "endpoint-pruning"
)

// AttackPayload builds a hijacking input for the vulnerable server
// workload ("vulnd"). The payload includes benign warm-up traffic
// followed by the overflow request.
func AttackPayload(kind AttackKind, w *Workload) ([]byte, error) {
	as, err := w.app.Load()
	if err != nil {
		return nil, err
	}
	switch kind {
	case AttackROP:
		return attack.BuildROPWrite(as)
	case AttackSROP:
		return attack.BuildSROP(as)
	case AttackRet2Lib:
		return attack.BuildRet2Lib(as)
	case AttackHistoryFlush:
		return attack.BuildHistoryFlush(as, 48)
	case AttackEndpointPruning:
		return attack.BuildEndpointPruning(as)
	default:
		return nil, fmt.Errorf("flowguard: unknown attack %q", kind)
	}
}
