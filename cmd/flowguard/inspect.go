package main

import (
	"flag"
	"fmt"
	"sort"

	"flowguard/internal/apps"
	"flowguard/internal/cfg"
	"flowguard/internal/isa"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/module"
	"flowguard/internal/trace"
	"flowguard/internal/trace/ipt"
)

// cmdDisasm prints a full symbolized listing of a workload's modules.
func cmdDisasm(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	only := fs.String("module", "", "restrict to one module (e.g. libc)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	a, err := apps.ByName(args[0])
	if err != nil {
		return err
	}
	as, err := a.Load()
	if err != nil {
		return err
	}
	for _, l := range as.Mods {
		if *only != "" && l.Mod.Name != *only {
			continue
		}
		fmt.Printf("\n%s  .text %#x-%#x  .data %#x (+%d bytes, %d GOT slots)\n",
			l.Mod.Name, l.CodeBase, l.CodeEnd(), l.DataBase, len(l.Mod.Data), l.Mod.GOTSlots)
		// Function starts for labeling.
		starts := map[uint64]string{}
		for _, s := range l.Mod.Symbols {
			if s.Kind == module.SymFunc {
				starts[l.CodeBase+s.Off] = s.Name
			}
		}
		for _, p := range l.Mod.PLT {
			starts[l.CodeBase+p.Off] = p.Symbol + "@plt"
		}
		for addr := l.CodeBase; addr < l.CodeEnd(); addr += isa.InstrSize {
			if name, ok := starts[addr]; ok {
				fmt.Printf("\n<%s>:\n", name)
			}
			raw, err := as.FetchInstr(addr)
			if err != nil {
				return err
			}
			in, err := isa.Decode(raw)
			if err != nil {
				return err
			}
			line := in.String()
			switch in.Op {
			case isa.JMP, isa.JCC, isa.CALL:
				line += fmt.Sprintf("    ; -> %s", as.SymbolFor(in.BranchTarget(addr)))
			case isa.LEA:
				line += fmt.Sprintf("    ; = %s", as.SymbolFor(addr+isa.InstrSize+uint64(int64(in.Imm))))
			}
			fmt.Printf("  %#08x: %s\n", addr, line)
		}
	}
	return nil
}

// cmdTrace runs the workload briefly under the IPT model and prints the
// packet listing — the Table 2 view of real execution.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	scale := fs.Int("scale", 1, "workload scale")
	limit := fs.Int("n", 120, "packets to print")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	a, err := apps.ByName(args[0])
	if err != nil {
		return err
	}
	k := kernelsim.New()
	p, err := a.Spawn(k, a.MakeInput(*scale, 1))
	if err != nil {
		return err
	}
	tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl,
		ipt.CtlTraceEn|ipt.CtlBranchEn|ipt.CtlUser|ipt.CtlToPA); err != nil {
		return err
	}
	tr.SetCR3(p.CR3)
	p.CPU.Branch = tr
	st, err := k.Run(p, 100_000_000)
	if err != nil {
		return err
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		return err
	}
	fmt.Printf("traced %d instructions -> %d bytes of packets (%.3f bytes/instr), status %v\n",
		p.CPU.Instrs, tr.Out.TotalWritten(),
		float64(tr.Out.TotalWritten())/float64(p.CPU.Instrs), st)
	shown := 0
	for _, e := range evs {
		if shown >= *limit {
			fmt.Printf("  ... %d more packets\n", len(evs)-shown)
			break
		}
		shown++
		switch e.Kind {
		case ipt.KindTNT:
			bits := make([]byte, e.TNTCount)
			for i := range bits {
				bits[i] = '0'
				if e.TNTBits&(1<<i) != 0 {
					bits[i] = '1'
				}
			}
			fmt.Printf("  %6d: TNT(%s)\n", e.Off, bits)
		case ipt.KindTIP:
			fmt.Printf("  %6d: TIP(%#x)  %s\n", e.Off, e.IP, p.AS.SymbolFor(e.IP))
		case ipt.KindTIPPGE:
			fmt.Printf("  %6d: TIP.PGE(%#x)\n", e.Off, e.IP)
		case ipt.KindTIPPGD:
			fmt.Printf("  %6d: TIP.PGD\n", e.Off)
		case ipt.KindFUP:
			tag := ""
			if e.Ctx {
				tag = " (PSB+ context)"
			}
			fmt.Printf("  %6d: FUP(%#x)%s\n", e.Off, e.IP, tag)
		case ipt.KindPSB:
			fmt.Printf("  %6d: PSB\n", e.Off)
		case ipt.KindPSBEND:
			fmt.Printf("  %6d: PSBEND\n", e.Off)
		case ipt.KindPIP:
			fmt.Printf("  %6d: PIP(cr3=%#x)\n", e.Off, e.CR3)
		case ipt.KindOVF:
			fmt.Printf("  %6d: OVF\n", e.Off)
		}
	}
	// Packet-mix summary.
	counts := map[ipt.Kind]int{}
	for _, e := range evs {
		counts[e.Kind]++
	}
	keys := make([]ipt.Kind, 0, len(counts))
	for kk := range counts {
		keys = append(keys, kk)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Print("packet mix:")
	for _, kk := range keys {
		fmt.Printf("  %v=%d", kk, counts[kk])
	}
	fmt.Println()
	return nil
}

// cmdVerify runs the §4.2 correctness check for a workload: it executes
// the app under the IPT model and validates that every retired branch is
// contained in the conservative O-CFG and every consecutive TIP pair is
// an ITC-CFG edge — the self-check an adopter runs after changing the
// analyzer or the toolchain.
func cmdVerify(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	scale := fs.Int("scale", 10, "workload scale")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	a, err := apps.ByName(args[0])
	if err != nil {
		return err
	}
	k := kernelsim.New()
	p, err := a.Spawn(k, a.MakeInput(*scale, *seed))
	if err != nil {
		return err
	}
	g, err := cfg.Build(p.AS)
	if err != nil {
		return err
	}
	ig := itc.FromCFG(g)

	tr := ipt.NewTracer(ipt.NewToPA(256 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl,
		ipt.CtlTraceEn|ipt.CtlBranchEn|ipt.CtlUser|ipt.CtlToPA); err != nil {
		return err
	}
	tr.SetCR3(p.CR3)
	branches, ocfgMisses := 0, 0
	check := trace.SinkFunc(func(br trace.Branch) {
		branches++
		if !g.ContainsEdge(br.Source, br.Target, br.Class) {
			ocfgMisses++
			if ocfgMisses <= 5 {
				fmt.Printf("  O-CFG MISS: %v %s -> %s\n",
					br.Class, p.AS.SymbolFor(br.Source), p.AS.SymbolFor(br.Target))
			}
		}
	})
	p.CPU.Branch = trace.MultiSink{tr, check}
	st, err := k.Run(p, 2_000_000_000)
	if err != nil {
		return err
	}
	if !st.Exited {
		return fmt.Errorf("workload did not finish cleanly: %v", st)
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		return err
	}
	tips := ipt.ExtractTIPs(evs)
	itcMisses := 0
	for i := 0; i+1 < len(tips); i++ {
		if !ig.HasEdge(tips[i].IP, tips[i+1].IP) {
			itcMisses++
			if itcMisses <= 5 {
				fmt.Printf("  ITC MISS: %s -> %s\n",
					p.AS.SymbolFor(tips[i].IP), p.AS.SymbolFor(tips[i+1].IP))
			}
		}
	}
	ft, err := ipt.DecodeFull(p.AS, tr.Out.Snapshot(), 0)
	if err != nil {
		return err
	}
	fullOK := uint64(len(ft.Flow)) == uint64(branches)
	fmt.Printf("workload:     %s (scale %d, seed %d)\n", a.Name, *scale, *seed)
	fmt.Printf("branches:     %d retired, %d O-CFG misses\n", branches, ocfgMisses)
	pairs := len(tips) - 1
	if pairs < 0 {
		pairs = 0
	}
	fmt.Printf("TIP pairs:    %d checked, %d ITC misses\n", pairs, itcMisses)
	fmt.Printf("full decode:  %d/%d branches reconstructed (match=%v)\n", len(ft.Flow), branches, fullOK)
	if ocfgMisses > 0 || itcMisses > 0 || !fullOK {
		return fmt.Errorf("verification FAILED")
	}
	fmt.Println("verification PASSED: conservative containment and decoder fidelity hold")
	return nil
}
