// Command flowguard is the CLI front end of the reproduction: it runs
// the offline analysis, the training phase and the protected execution
// for any built-in workload, and launches the §7.1.2 attacks against the
// vulnerable server.
//
//	flowguard list
//	flowguard stats  nginx
//	flowguard run    nginx  [-scale 30] [-seed 1] [-train 6] [-fuzz 0]
//	flowguard attack rop    [-train 6]
//	flowguard gadgets vulnd [-max 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"flowguard"
	"flowguard/internal/apps"
	"flowguard/internal/attack"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  flowguard list
  flowguard stats  <workload>
  flowguard run    <workload> [-scale N] [-seed N] [-train N] [-fuzz N]
                              [-save-graph F] [-load-graph F] [-pmi] [-paths]
  flowguard attack <rop|srop|ret2lib|history-flush|endpoint-pruning> [-train N]
  flowguard gadgets <workload> [-max N]
  flowguard disasm <workload> [-module M]
  flowguard trace  <workload> [-scale N] [-n packets]
  flowguard verify <workload> [-scale N] [-seed N]
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "stats":
		err = cmdStats(args)
	case "run":
		err = cmdRun(args)
	case "attack":
		err = cmdAttack(args)
	case "gadgets":
		err = cmdGadgets(args)
	case "disasm":
		err = cmdDisasm(args)
	case "trace":
		err = cmdTrace(args)
	case "verify":
		err = cmdVerify(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowguard:", err)
		os.Exit(1)
	}
}

func cmdList() error {
	fmt.Printf("%-12s %s\n", "WORKLOAD", "CATEGORY")
	for _, name := range flowguard.Workloads() {
		w, err := flowguard.LoadWorkload(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %s\n", w.Name(), w.Category())
	}
	return nil
}

func cmdStats(args []string) error {
	if len(args) < 1 {
		usage()
	}
	w, err := flowguard.LoadWorkload(args[0])
	if err != nil {
		return err
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Printf("workload:        %s (%s)\n", w.Name(), w.Category())
	fmt.Printf("functions:       %d\n", st.Functions)
	fmt.Printf("basic blocks:    %d\n", st.BasicBlocks)
	fmt.Printf("libraries:       %d\n", st.Libraries)
	fmt.Printf("O-CFG AIA:       %.2f\n", st.OCFGAIA)
	fmt.Printf("ITC-CFG:         |V|=%d |E|=%d AIA=%.2f\n", st.ITCNodes, st.ITCEdges, st.ITCAIA)
	fmt.Printf("fine AIA:        %.2f (TypeArmor forward + shadow-stack returns)\n", st.FineAIA)
	fmt.Printf("graph memory:    %d bytes\n", st.MemoryBytes)
	return nil
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scale := fs.Int("scale", 30, "workload scale")
	seed := fs.Int64("seed", 1, "workload seed")
	train := fs.Int("train", 6, "training replays")
	fuzzN := fs.Int("fuzz", 0, "additional fuzzing executions for training")
	loadGraph := fs.String("load-graph", "", "load a trained ITC-CFG instead of training")
	saveGraph := fs.String("save-graph", "", "write the trained ITC-CFG to this file")
	pmi := fs.Bool("pmi", false, "also check on buffer-full PMIs")
	paths := fs.Bool("paths", false, "path-sensitive fast path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, err := flowguard.LoadWorkload(args[0])
	if err != nil {
		return err
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		return err
	}
	if *loadGraph != "" {
		f, err := os.Open(*loadGraph)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.LoadTrained(f); err != nil {
			return err
		}
		fmt.Printf("trained graph:   loaded from %s\n", *loadGraph)
	} else if err := sys.TrainGenerated(*train, *scale, *seed+100); err != nil {
		return err
	}
	if *fuzzN > 0 {
		stats, err := sys.TrainWithFuzzer(*fuzzN, [][]byte{w.Input(2, *seed)})
		if err != nil {
			return err
		}
		fmt.Printf("fuzz training:   %d execs, corpus %d, %d paths\n",
			stats.Execs, stats.CorpusSize, stats.Paths)
	}
	if *saveGraph != "" {
		f, err := os.Create(*saveGraph)
		if err != nil {
			return err
		}
		if err := sys.SaveTrained(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trained graph:   saved to %s\n", *saveGraph)
	}
	pol := flowguard.DefaultPolicy()
	pol.CheckOnPMI = *pmi
	pol.PathSensitive = *paths
	out, err := sys.RunWithPolicy(w.Input(*scale, *seed), pol)
	if err != nil {
		return err
	}
	fmt.Printf("status:          exited=%v killed=%v\n", out.Exited, out.Killed)
	fmt.Printf("output:          %d bytes\n", len(out.Stdout))
	fmt.Printf("checks:          %d (%d slow)\n", out.Checks, out.SlowChecks)
	fmt.Printf("cred-ratio:      %.3f\n", out.CredRatio)
	fmt.Printf("overhead:        %.2f%% (trace %.2f%% decode %.2f%% check %.2f%% other %.2f%%)\n",
		out.OverheadPct, out.Parts.Trace, out.Parts.Decode, out.Parts.Check, out.Parts.Other)
	for _, v := range out.Violations {
		fmt.Println("violation:      ", v)
	}
	return nil
}

func cmdAttack(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	train := fs.Int("train", 6, "training replays")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		return err
	}
	payload, err := flowguard.AttackPayload(flowguard.AttackKind(args[0]), w)
	if err != nil {
		return err
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		return err
	}
	if err := sys.TrainGenerated(*train, 20, 101); err != nil {
		return err
	}
	fmt.Printf("launching %s against vulnd (%d-byte payload)...\n", args[0], len(payload))
	out, err := sys.Run(payload)
	if err != nil {
		return err
	}
	if out.Killed {
		fmt.Println("DETECTED: process killed by FlowGuard")
		for _, v := range out.Violations {
			fmt.Println(" ", v)
		}
		return nil
	}
	fmt.Println("NOT DETECTED: the attack completed")
	return nil
}

func cmdGadgets(args []string) error {
	if len(args) < 1 {
		usage()
	}
	fs := flag.NewFlagSet("gadgets", flag.ExitOnError)
	maxLen := fs.Int("max", 4, "max gadget length in instructions")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	a, err := apps.ByName(args[0])
	if err != nil {
		return err
	}
	as, err := a.Load()
	if err != nil {
		return err
	}
	gs := attack.FindGadgets(as, *maxLen)
	for _, g := range gs {
		fmt.Println(g)
	}
	fmt.Printf("%d gadgets (max %d instructions)\n", len(gs), *maxLen)
	return nil
}
