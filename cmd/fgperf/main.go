// Command fgperf orchestrates the repo's benchmark suites into a
// statistically defensible performance artifact.
//
// A single `go test -bench` run is one sample per benchmark — useless
// for deciding whether a change regressed the fast path, because
// scheduling noise on a shared machine easily exceeds the effects under
// test. fgperf instead runs the whole suite N times in interleaved
// order (iteration 1 of every benchmark, then iteration 2, ...), so
// slow drift of the machine spreads across all benchmarks instead of
// biasing whichever ran last, then summarizes each benchmark's N
// samples (median, bootstrap CI) and, against a baseline artifact,
// runs a Mann–Whitney U test per benchmark. The result is written as a
// schema-versioned BENCH_<date>.json trajectory point and rendered as a
// benchstat-style table.
//
//	fgperf                            # full suite, 5 iterations, BENCH_<date>.json
//	fgperf -short                     # tier-1 hot-path benchmarks only, 8 iterations
//	                                  # (CI's bench job)
//	fgperf -short -base bench/baseline.json -gate
//	                                  # compare against the committed baseline and
//	                                  # exit 1 on a significant >10% tier-1 slowdown
//	fgperf -compare BENCH_a.json -base BENCH_b.json -gate
//	                                  # compare two existing artifacts, no benchmarks run
//	fgperf -short -profile prof/      # also capture pprof CPU+alloc profiles
//	fgperf -short -metrics            # sample runtime/metrics inside the benchmarks
//
// The regression gate only fails on *tier-1* benchmarks (the §5.3 fast
// path and its feeding layers — see perfstat.Tier1Names), and only on a
// change that is both statistically significant (p < alpha) and larger
// than the threshold; everything else is advisory output.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"flowguard/internal/perfstat"
)

// suite is one go test invocation: a package and a benchmark regexp.
type suite struct {
	pkg   string
	bench string
}

// fullSuites covers every package that declares benchmarks.
var fullSuites = []suite{
	{pkg: ".", bench: "."},
	{pkg: "./internal/guard", bench: "."},
	{pkg: "./internal/trace/ipt", bench: "."},
	{pkg: "./internal/harness", bench: "^BenchmarkFleetThroughput$"},
}

// shortSuites is the tier-1 hot-path subset: quick enough for CI, and
// exactly the set the regression gate protects.
var shortSuites = []suite{
	{pkg: ".", bench: "^(BenchmarkFastPath|BenchmarkFastDecode|BenchmarkGuardCheck|BenchmarkITCLookup|BenchmarkITCFlatSerialize|BenchmarkIPTPacketScan)$"},
	{pkg: "./internal/guard", bench: "^(BenchmarkIncrementalWindow|BenchmarkApprovalCache|BenchmarkCheckPoolThroughput|BenchmarkAsyncSyscallGate)$"},
	{pkg: "./internal/trace/ipt", bench: "^BenchmarkDemux$"},
	{pkg: "./internal/harness", bench: "^BenchmarkFleetThroughput$"},
}

func main() {
	var (
		n           = flag.Int("n", 5, "interleaved suite iterations (samples per benchmark; default 8 under -short)")
		short       = flag.Bool("short", false, "run only the tier-1 hot-path benchmarks, with a bounded -benchtime")
		benchtime   = flag.String("benchtime", "", "go test -benchtime value (default: go's 1s; 2000x under -short)")
		benchRe     = flag.String("bench", "", "override the benchmark regexp for every suite")
		outPath     = flag.String("out", "", "artifact output path (default BENCH_<yyyy-mm-dd>.json)")
		basePath    = flag.String("base", "", "baseline artifact to compare the run against")
		comparePath = flag.String("compare", "", "compare this existing artifact against -base instead of running benchmarks")
		gate        = flag.Bool("gate", false, "exit 1 on a significant tier-1 regression vs -base")
		threshold   = flag.Float64("threshold", 10, "regression threshold, percent median slowdown")
		alpha       = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney U test")
		profile     = flag.String("profile", "", "directory to write pprof CPU+alloc profiles into (first iteration only)")
		metrics     = flag.Bool("metrics", false, "pass -fgmetrics to the root suite (runtime/metrics sampling in the benchmarks)")
		verbose     = flag.Bool("v", false, "stream go test output while running")
		reqTier1    = flag.Bool("require-tier1", false, "exit 1 unless every perfstat.Tier1Names benchmark appears in the run (catches renames that a baseline regenerated in the same change would hide)")
	)
	flag.Parse()

	// Under -short the samples feed the CI regression gate, and at the
	// default n=5 a Mann-Whitney rank test can reach p < 0.05 on rank
	// ordering alone — one unlucky scheduling phase on a shared runner
	// reads as a regression. Eight samples put the extreme-rank flukes
	// well past the gate's alpha, so -short raises the default unless -n
	// was given explicitly.
	if *short {
		nSet := false
		flag.Visit(func(f *flag.Flag) { nSet = nSet || f.Name == "n" })
		if !nSet {
			*n = 8
		}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fgperf:", err)
		os.Exit(1)
	}

	cfg := perfstat.GateConfig{Alpha: *alpha, ThresholdPct: *threshold}

	if *comparePath != "" {
		if *basePath == "" {
			fail(fmt.Errorf("-compare needs -base"))
		}
		cur, err := readArtifact(*comparePath)
		if err != nil {
			fail(err)
		}
		if *reqTier1 {
			if err := requireTier1(cur); err != nil {
				fail(err)
			}
		}
		os.Exit(compareAndReport(cur, *basePath, cfg, *gate))
	}

	art, err := run(*n, *short, *benchtime, *benchRe, *profile, *metrics, *verbose)
	if err != nil {
		fail(err)
	}
	if *reqTier1 {
		if err := requireTier1(art); err != nil {
			fail(err)
		}
	}

	path := *outPath
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if err := writeArtifact(art, path); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d benchmarks x %d iterations)\n\n", path, len(art.Benchmarks), art.Iterations)
	fmt.Print(perfstat.FormatArtifact(art))

	if *basePath != "" {
		os.Exit(compareAndReport(art, *basePath, cfg, *gate))
	}
}

// requireTier1 fails when any protected tier-1 benchmark produced no
// samples: the baseline-relative gate cannot see a benchmark that was
// renamed or deleted in the same change that refreshed the baseline, so
// this check is absolute against the tier-1 list itself.
func requireTier1(art *perfstat.Artifact) error {
	if missing := perfstat.MissingTier1(art.Benchmarks, perfstat.Tier1Names()); len(missing) > 0 {
		return fmt.Errorf("tier-1 benchmarks missing from the run: %s", strings.Join(missing, ", "))
	}
	return nil
}

// run executes every suite n times in interleaved order and returns the
// accumulated artifact.
func run(n int, short bool, benchtime, benchRe, profileDir string, metrics, verbose bool) (*perfstat.Artifact, error) {
	if n < 1 {
		n = 1
	}
	suites := fullSuites
	if short {
		suites = shortSuites
		if benchtime == "" {
			// 2000x, not go's adaptive 1s: fixed iteration counts keep
			// the samples comparable across artifacts, and the count must
			// be high enough that (a) a ~20ns tier-1 benchmark (the flat
			// ITC lookup) measures the operation rather than the
			// monotonic clock reads around the loop — at 20x the timer
			// overhead is ~10x the op — and (b) each sample spans several
			// milliseconds, long enough to average over scheduler
			// interference on a shared single-core runner instead of
			// letting one preemption double a sample.
			benchtime = "2000x"
		}
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return nil, err
		}
	}

	col := perfstat.NewCollector()
	var argsDesc string
	for iter := 0; iter < n; iter++ {
		for si, s := range suites {
			re := s.bench
			if benchRe != "" {
				re = benchRe
			}
			args := []string{"test", "-run", "^$", "-bench", re, "-benchmem"}
			if benchtime != "" {
				args = append(args, "-benchtime", benchtime)
			}
			if profileDir != "" && iter == 0 {
				tag := fmt.Sprintf("s%d", si)
				args = append(args,
					"-cpuprofile", filepath.Join(profileDir, "cpu_"+tag+".pprof"),
					"-memprofile", filepath.Join(profileDir, "mem_"+tag+".pprof"),
					"-o", filepath.Join(profileDir, "bench_"+tag+".test"),
				)
			}
			// The -fgmetrics flag is declared by the root package's bench
			// support; other packages would reject it.
			if metrics && s.pkg == "." {
				args = append(args, "-args", "-fgmetrics")
			}
			cmdArgs := buildArgs(args, s.pkg)
			if iter == 0 && si == 0 {
				argsDesc = strings.Join(cmdArgs[1:], " ")
			}
			fmt.Fprintf(os.Stderr, "fgperf: iteration %d/%d: go %s\n", iter+1, n, strings.Join(cmdArgs, " "))
			out, err := runGo(root, cmdArgs, verbose)
			if err != nil {
				return nil, err
			}
			if err := col.Add(bytes.NewReader(out)); err != nil {
				return nil, err
			}
		}
	}

	benches := col.Benchmarks()
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed — wrong -bench regexp?")
	}
	perfstat.MarkTier1(benches, perfstat.Tier1Names())
	return &perfstat.Artifact{
		Schema:     perfstat.SchemaVersion,
		Tool:       "fgperf",
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Iterations: n,
		BenchArgs:  argsDesc,
		Benchmarks: benches,
	}, nil
}

// buildArgs assembles the final go test argument list with the package
// placed before any -args passthrough section.
func buildArgs(args []string, pkg string) []string {
	for i, a := range args {
		if a == "-args" {
			out := make([]string, 0, len(args)+1)
			out = append(out, args[:i]...)
			out = append(out, pkg)
			out = append(out, args[i:]...)
			return out
		}
	}
	return append(append([]string(nil), args...), pkg)
}

// runGo executes one go test invocation from the module root.
func runGo(root string, args []string, verbose bool) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stderr = os.Stderr
	if verbose {
		// Tee: stream to the terminal while still capturing for parsing.
		cmd.Stdout = io.MultiWriter(&buf, os.Stdout)
	} else {
		cmd.Stdout = &buf
	}
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.Bytes())
	}
	return buf.Bytes(), nil
}

// moduleRoot locates the module directory so fgperf works from any cwd.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

func readArtifact(path string) (*perfstat.Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfstat.DecodeArtifact(f)
}

func writeArtifact(a *perfstat.Artifact, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareAndReport prints the baseline comparison and returns the
// process exit code (1 only when gating and the gate fails).
func compareAndReport(cur *perfstat.Artifact, basePath string, cfg perfstat.GateConfig, gate bool) int {
	base, err := readArtifact(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgperf:", err)
		return 1
	}
	comps := perfstat.Compare(base, cur, cfg)
	fmt.Printf("\nvs baseline %s (%s, %s):\n", basePath, base.Tool, base.CreatedAt)
	fmt.Print(perfstat.FormatComparison(comps))
	if err := perfstat.Gate(comps); err != nil {
		if gate {
			fmt.Fprintln(os.Stderr, "fgperf: GATE FAILED:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "fgperf: regressions found (advisory, no -gate):", err)
		return 0
	}
	fmt.Println("gate: no significant tier-1 regressions")
	return 0
}
