// Command fgvet is FlowGuard's domain-specific multichecker: it runs
// the internal/analysis suite over the module and fails on any
// unsuppressed finding. It is part of `make vet` and the CI lint job;
// the analyzers turn the repo's implicit contracts into build gates:
//
//	oracleisolation  the differential oracle shares no code with the
//	                 production pipeline (DESIGN.md §7)
//	failclosed       Verdict/TraceHealth decisions are exhaustive and
//	                 never pass from a default branch (§7.1.2)
//	hotpathalloc     //fg:hotpath functions stay allocation-free (§5.3)
//	statssync        guard.Stats, Stats.Merge, the oracle comparison
//	                 and the reporters stay in lockstep
//	lockdiscipline   no checker lock held across blocking operations or
//	                 callbacks (§6)
//
// Findings are suppressed line-by-line with a documented
//
//	//fg:ignore <analyzer> <reason>
//
// and every suppression is echoed in the output (with -quiet they are
// counted but not printed), so exceptions stay visible. Stale or
// undocumented suppressions are errors.
//
// Usage:
//
//	fgvet [-quiet] [-list] [packages]
//
// With no package patterns, ./... is checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/failclosed"
	"flowguard/internal/analysis/hotpathalloc"
	"flowguard/internal/analysis/lockdiscipline"
	"flowguard/internal/analysis/oracleisolation"
	"flowguard/internal/analysis/statssync"
)

// analyzers is the full suite, in stable output order.
var analyzers = []*analysis.Analyzer{
	failclosed.Analyzer,
	hotpathalloc.Analyzer,
	lockdiscipline.Analyzer,
	oracleisolation.Analyzer,
	statssync.Analyzer,
}

func main() {
	quiet := flag.Bool("quiet", false, "do not print suppressed findings")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail(err)
	}

	bad, suppressed := 0, 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fail(err)
		}
		for _, f := range findings {
			if f.Suppressed {
				suppressed++
				if !*quiet {
					fmt.Println(f)
				}
				continue
			}
			bad++
			fmt.Println(f)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "fgvet: %d finding(s) suppressed by documented //fg:ignore\n", suppressed)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fgvet: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fgvet:", err)
	os.Exit(1)
}
