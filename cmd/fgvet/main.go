// Command fgvet is FlowGuard's domain-specific multichecker: it runs
// the internal/analysis suite over the module and fails on any
// unsuppressed finding. It is part of `make vet` and the CI lint job;
// the analyzers turn the repo's implicit contracts into build gates:
//
//	oracleisolation  the differential oracle shares no code with the
//	                 production pipeline (DESIGN.md §7)
//	failclosed       Verdict/TraceHealth decisions are exhaustive and
//	                 never pass from a default branch (§7.1.2)
//	hotpathalloc     //fg:hotpath functions stay allocation-free (§5.3)
//	hotpathalloc-interproc
//	                 helpers reachable from //fg:hotpath roots do not
//	                 allocate; cold calls carry //fg:cold <reason> (§8)
//	statssync        guard.Stats, Stats.Merge, the oracle comparison
//	                 and the reporters stay in lockstep
//	lockdiscipline   no checker lock held across blocking operations or
//	                 callbacks (§6)
//	lockorder        one global mutex acquisition order — opposite
//	                 orders anywhere in the callgraph can deadlock (§8)
//	atomicfield      a field accessed via sync/atomic is never touched
//	                 plainly outside its constructor (§8)
//	goroutinelifecycle
//	                 Add before go, no spawn or Wait under a lock, no
//	                 send on a channel nothing can drain (§8)
//
// Packages are analyzed in dependency order against a shared fact
// store, so interprocedural analyzers (lockorder, atomicfield,
// hotpathalloc-interproc) see through package boundaries. In-module
// dependencies pulled in only to seed facts are analyzed but not
// reported on.
//
// Findings are suppressed line-by-line with a documented
//
//	//fg:ignore <analyzer> <reason>
//
// and every suppression is echoed in the output (with -quiet they are
// counted but not printed), so exceptions stay visible. Stale or
// undocumented suppressions are errors.
//
// Usage:
//
//	fgvet [-quiet] [-list] [-json] [packages]
//
// With no package patterns, ./... is checked. With -json, findings are
// emitted as a single JSON array on stdout (suppressed ones included,
// flagged) for tooling; the exit status is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flowguard/internal/analysis"
	"flowguard/internal/analysis/atomicfield"
	"flowguard/internal/analysis/failclosed"
	"flowguard/internal/analysis/goroutinelifecycle"
	"flowguard/internal/analysis/hotpathalloc"
	"flowguard/internal/analysis/hotpathinterproc"
	"flowguard/internal/analysis/lockdiscipline"
	"flowguard/internal/analysis/lockorder"
	"flowguard/internal/analysis/oracleisolation"
	"flowguard/internal/analysis/statssync"
)

// analyzers is the full suite, in stable output order.
var analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	failclosed.Analyzer,
	goroutinelifecycle.Analyzer,
	hotpathalloc.Analyzer,
	hotpathinterproc.Analyzer,
	lockdiscipline.Analyzer,
	lockorder.Analyzer,
	oracleisolation.Analyzer,
	statssync.Analyzer,
}

// jsonFinding is the -json wire shape: flat, stable field names.
type jsonFinding struct {
	File           string `json:"file"`
	Line           int    `json:"line"`
	Column         int    `json:"column"`
	Analyzer       string `json:"analyzer"`
	Message        string `json:"message"`
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
}

func main() {
	quiet := flag.Bool("quiet", false, "do not print suppressed findings")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail(err)
	}

	// One store across the whole run: Load returns dependencies before
	// dependents, so each package sees its deps' facts.
	store := analysis.NewFactStore()
	bad, suppressed, reported := 0, 0, 0
	var out []jsonFinding
	for _, pkg := range pkgs {
		findings, err := analysis.RunPkg(pkg, analyzers, store)
		if err != nil {
			fail(err)
		}
		if pkg.FactsOnly {
			continue // analyzed for facts; not in the requested patterns
		}
		reported++
		for _, f := range findings {
			if *jsonOut {
				out = append(out, jsonFinding{
					File: f.Position.Filename, Line: f.Position.Line, Column: f.Position.Column,
					Analyzer: f.Analyzer, Message: f.Message,
					Suppressed: f.Suppressed, SuppressReason: f.SuppressReason,
				})
			}
			if f.Suppressed {
				suppressed++
				if !*quiet && !*jsonOut {
					fmt.Println(f)
				}
				continue
			}
			bad++
			if !*jsonOut {
				fmt.Println(f)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonFinding{}
		}
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "fgvet: %d finding(s) suppressed by documented //fg:ignore\n", suppressed)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fgvet: %d finding(s) in %d package(s)\n", bad, reported)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fgvet:", err)
	os.Exit(1)
}
