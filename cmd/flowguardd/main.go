// Command flowguardd is the fleet-scale enforcement simulator
// (DESIGN.md §10): one guard design, ten thousand processes. It
// analyzes and trains a handful of binaries, builds one shared
// immutable label artifact per binary, spins up the configured process
// population over them, and drives a heavy-tailed (Zipf) check workload
// through the sharded, fairness-governed admission layer — with fork
// storms inheriting trained credit along the way.
//
// Every run validates the fleet ledger invariants (checks == admitted +
// shed per shard and in aggregate, one artifact per binary, fork
// inheritance fully counted, zero real violations on the benign
// workload) and exits non-zero on any breach.
//
//	flowguardd                       # 10k procs, 20k events, one-line summary
//	flowguardd -procs 2000 -duration 5s
//	flowguardd -smoke                # CI smoke: bounded population + wall clock
//	flowguardd -forks 0              # disable the rolling fork storm
//	flowguardd -out fleet.json       # perfstat artifact with fleet_stats
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowguard/internal/harness"
	"flowguard/internal/perfstat"
)

func main() {
	var (
		procs    = flag.Int("procs", 10000, "simulated process population")
		tenants  = flag.Int("tenants", 64, "distinct tenants")
		shards   = flag.Int("shards", 8, "admission shards")
		workers  = flag.Int("workers", 4, "checker slots per shard")
		drivers  = flag.Int("drivers", 8, "concurrent driver goroutines")
		events   = flag.Int("events", 20000, "check events to drive (0 = duration-bound only)")
		duration = flag.Duration("duration", 0, "wall-clock bound (0 = event-bound only)")
		forks    = flag.Int("forks", 500, "fork a driven process every N driver-local events (0 = off)")
		scale    = flag.Int("scale", 30, "per-binary workload scale for training and the recorded trace")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		outPath  = flag.String("out", "", "write a perfstat artifact with the fleet_stats map")
		smoke    = flag.Bool("smoke", false, "CI smoke mode: small population, bounded wall clock, invariants enforced")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "flowguardd:", err)
		os.Exit(1)
	}

	if *smoke {
		*procs, *events = 2000, 6000
		if *duration == 0 {
			*duration = 15 * time.Second
		}
	}

	r := harness.NewRunner()
	r.Scale, r.Seed = *scale, *seed
	cfg := harness.FleetConfig{
		Procs:           *procs,
		Tenants:         *tenants,
		Shards:          *shards,
		WorkersPerShard: *workers,
		Drivers:         *drivers,
		ForkEvery:       *forks,
	}
	build := time.Now()
	fleet, err := r.NewFleet(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("flowguardd: fleet up: %d procs in %s\n",
		*procs, time.Since(build).Round(time.Millisecond))

	res, err := fleet.Run(*events, *duration)
	if err != nil {
		fail(err)
	}
	fmt.Println(res)
	if res.ShedSample != "" {
		fmt.Printf("flowguardd: first shed: %s\n", res.ShedSample)
	}

	if *outPath != "" {
		art := &perfstat.Artifact{
			Schema:    perfstat.SchemaVersion,
			Tool:      "flowguardd",
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			Benchmarks: []perfstat.Benchmark{{
				Name:    "FleetThroughput",
				Samples: map[string][]float64{"checks/sec": {res.ChecksPerSec}},
			}},
			FleetStats: res.FleetStatsMap(),
		}
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		if err := art.Encode(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("flowguardd: wrote %s\n", *outPath)
	}

	if bad := res.Check(); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "flowguardd: invariant violated:", b)
		}
		os.Exit(1)
	}
	fmt.Println("flowguardd: fleet invariants hold")
}
