// Command fgbench regenerates every table and figure of the paper's
// evaluation (§7) from the reproduction, printing one section per
// experiment:
//
//	fgbench -all                 # everything (EXPERIMENTS.md source)
//	fgbench -table 1             # tracing-mechanism comparison
//	fgbench -table 4 -table 5    # CFG statistics, memory & generation time
//	fgbench -fig 5a -fig 5c      # overhead panels
//	fgbench -micro -attacks      # §7.2.2 micro, §7.1.2 attack matrix
//	fgbench -sweep -ablation     # §7.1.1 parameters, §7.2.4 HW decoder
//	fgbench -parallel 4          # §6 pooled parallel checking speedup
//	fgbench -claim decode230x    # the §2 slow-decoding measurement
//	fgbench -oracle 10000        # differential soak vs the naive oracle
//
// -scale / -seed / -train size the workloads; the defaults finish a full
// run in well under a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flowguard/internal/harness"
	"flowguard/internal/perfstat"
)

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figs, claims listFlag
	all := flag.Bool("all", false, "run every experiment")
	micro := flag.Bool("micro", false, "run the fast/slow micro-benchmark (§7.2.2)")
	attacks := flag.Bool("attacks", false, "run the attack matrix (§7.1.2)")
	sweep := flag.Bool("sweep", false, "run the parameter sweeps (§7.1.1)")
	ablation := flag.Bool("ablation", false, "run the hardware-decoder ablation (§7.2.4)")
	modes := flag.Bool("modes", false, "compare checking modes: credits, path-sensitive, PMI fallback")
	multiproc := flag.Bool("multiproc", false, "CR3-filter limitation with interleaved processes (§7.2.4)")
	parallel := flag.Int("parallel", 0, "run N protected processes with pooled parallel checking (§6) and report aggregate check latency")
	asyncN := flag.Int("async", 0, "run N samples per checking configuration comparing syscall-blocked time: synchronous vs the asynchronous pipeline")
	chaos := flag.Int("chaos", 0, "run N seeded fault-injection scenarios across the degraded-mode policies (§7.1.2 worst cases)")
	oracle := flag.Int("oracle", 0, "run N seeded differential checks of the optimized hybrid pipeline against the naive oracle")
	jsonOut := flag.String("json", "", "also write the results that ran as a perfstat artifact (fgperf-compatible BENCH json) to this path")
	scale := flag.Int("scale", 30, "workload scale (requests / iterations)")
	seed := flag.Int64("seed", 1, "workload seed")
	train := flag.Int("train", 6, "training replays per application")
	flag.Var(&tables, "table", "table to regenerate (1, 4, 5); repeatable")
	flag.Var(&figs, "fig", "figure to regenerate (5a, 5b, 5c, 5d); repeatable")
	flag.Var(&claims, "claim", "standalone claim to check (decode230x); repeatable")
	flag.Parse()

	r := harness.NewRunner()
	r.Scale = *scale
	r.Seed = *seed
	r.TrainRuns = *train

	want := func(list listFlag, v string) bool {
		if *all {
			return true
		}
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fgbench:", err)
		os.Exit(1)
	}
	section := func(title string) {
		ran = true
		fmt.Printf("\n== %s ==\n", title)
	}

	// -json accumulators: whichever sections run contribute their piece
	// of the perfstat artifact.
	var phases []perfstat.PhaseBreakdown
	var fleetStats map[string]uint64
	var jsonBenches []perfstat.Benchmark

	if want(tables, "1") {
		section("Table 1: hardware control-flow tracing mechanisms")
		rows, err := r.Table1()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
	}
	if want(claims, "decode230x") {
		section("§2 claim: full-decode overhead vs execution")
		geo, per, err := r.DecodeOverheadX()
		if err != nil {
			fail(err)
		}
		for name, x := range per {
			fmt.Printf("  %-12s %.0fx\n", name, x)
		}
		fmt.Printf("  geomean: %.0fx (paper: ~230x)\n", geo)
	}
	if want(tables, "4") || want(tables, "5") {
		t4, t5, err := r.Table4And5()
		if err != nil {
			fail(err)
		}
		if want(tables, "4") {
			section("Table 4: CFG statistics and AIA")
			for _, row := range t4 {
				fmt.Println(" ", row)
			}
			before, after := harness.AverageAIAReduction(t4)
			fmt.Printf("  average AIA: %.2f -> %.2f (paper: 72 -> 20)\n", before, after)
		}
		if want(tables, "5") {
			section("Table 5: memory usage and CFG generation time")
			for _, row := range t5 {
				fmt.Println(" ", row)
			}
		}
	}
	if want(figs, "5a") {
		section("Figure 5(a): server overhead")
		rows, err := r.Fig5a()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
		phases = append(phases, harness.PhaseBreakdowns(rows)...)
	}
	if want(figs, "5b") {
		section("Figure 5(b): Linux-utility overhead")
		rows, err := r.Fig5b()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
		phases = append(phases, harness.PhaseBreakdowns(rows)...)
	}
	if want(figs, "5c") {
		section("Figure 5(c): SPEC-like kernel overhead")
		rows, err := r.Fig5c()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
		phases = append(phases, harness.PhaseBreakdowns(rows)...)
	}
	if want(figs, "5d") {
		section("Figure 5(d): fuzzing training dynamics")
		pts, err := r.Fig5d([]int{0, 200, 500, 1000, 2000})
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			fmt.Println(" ", p)
		}
	}
	if *all || *micro {
		section("§7.2.2 micro: fast path vs slow path (100-TIP window)")
		m, err := r.Micro()
		if err != nil {
			fail(err)
		}
		fmt.Println(" ", m)
		fmt.Println("  (paper: slow path ~0.23 ms, ~60x over the fast path)")
		jsonBenches = append(jsonBenches,
			perfstat.Benchmark{Name: "FgbenchMicro/fast-path", Tier1: true, Samples: map[string][]float64{
				"cycles/window": {float64(m.FastCycles)},
				"ns/op":         {float64(m.FastWall.Nanoseconds())},
			}},
			perfstat.Benchmark{Name: "FgbenchMicro/slow-path", Samples: map[string][]float64{
				"cycles/window":  {float64(m.SlowCycles)},
				"ns/op":          {float64(m.SlowWall.Nanoseconds())},
				"slow-over-fast": {m.SlowOverFast},
			}},
		)
	}
	if *all || *attacks {
		section("§7.1.2: real attack prevention")
		rows, err := r.Attacks()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
	}
	if *all || *sweep {
		section("§7.1.1: cred_ratio formula and pkt_count sweep")
		sweeps, err := r.SweepCredRatio()
		if err != nil {
			fail(err)
		}
		for _, s := range sweeps {
			fmt.Println(" ", s)
		}
		pts, err := r.SweepPktCount([]int{10, 20, 30, 60, 90})
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			fmt.Println(" ", p)
		}
	}
	if *all || *ablation {
		section("§7.2.4: dedicated hardware decoder ablation")
		rows, err := r.HWAblation()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
	}

	if *all || *modes {
		section("checking-mode matrix: default / multi-level credits / path-sensitive / PMI")
		rows, err := r.Modes()
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
	}

	if *all || *multiproc {
		section("§7.2.4: single-CR3 filtering vs multi-process tracing cost")
		res, err := r.MultiProc(3)
		if err != nil {
			fail(err)
		}
		fmt.Println(" ", res)
		fmt.Println("  (paper: single-process apps outperform multi-process ones under one CR3 filter)")
	}

	if *all || *parallel > 0 {
		n := *parallel
		if n <= 0 {
			n = 4
		}
		section("§6: parallel flow checking across spare cores")
		res, err := r.Parallel(n)
		if err != nil {
			fail(err)
		}
		fmt.Println(" ", res)
		fmt.Println("  (checks for concurrent processes are offloaded to a bounded worker pool)")
		fmt.Println("  merged guard stats across the fleet:")
		fmt.Print(harness.FormatStats(&res.Agg))
		fleetStats = harness.StatsMap(&res.Agg)
	}

	if *all || *asyncN > 0 {
		n := *asyncN
		if n <= 0 {
			n = 12
		}
		section("asynchronous checking: syscall-blocked time at the interception boundary")
		rows, err := r.AsyncGate(n)
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
			jsonBenches = append(jsonBenches, perfstat.Benchmark{
				Name:    "FgbenchAsyncGate/" + row.Name,
				Samples: map[string][]float64{"blocked-ns/call": row.Samples},
			})
		}
		fmt.Println("  (async rows must beat sync with Mann-Whitney p < 0.05; verdicts are unchanged by construction)")
	}

	if *all || *chaos > 0 {
		n := *chaos
		if n <= 0 {
			n = 90
		}
		section("§7.1.2 worst cases: fault injection across degraded modes")
		rows, err := r.Chaos(n)
		if err != nil {
			fail(err)
		}
		for _, row := range rows {
			fmt.Println(" ", row)
		}
		fmt.Println("  (trace loss/corruption/gaps per policy; attacks must still die except in explicit fail-open windows)")
	}

	if *all || *oracle > 0 {
		n := *oracle
		if n <= 0 {
			n = 60
		}
		section("differential oracle: optimized hybrid pipeline vs naive reference")
		rows, err := r.OracleSoak(n)
		if err != nil {
			fail(err)
		}
		diverged := 0
		for _, row := range rows {
			fmt.Println(" ", row)
			diverged += row.DivergenceCount + row.Panics + row.Errors
			for _, s := range row.Samples {
				fmt.Println("    !", s)
			}
		}
		if diverged != 0 {
			fail(fmt.Errorf("oracle soak found %d divergences/panics/errors", diverged))
		}
		fmt.Println("  (benign, exploit, chaos-faulted and mutated-stream workloads; zero divergences required)")
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" {
		art := &perfstat.Artifact{
			Schema:     perfstat.SchemaVersion,
			Tool:       "fgbench",
			CreatedAt:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			Iterations: 1,
			BenchArgs:  strings.Join(os.Args[1:], " "),
			Benchmarks: jsonBenches,
			Phases:     phases,
			FleetStats: fleetStats,
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := art.Encode(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s (%d benchmarks, %d phase rows)\n", *jsonOut, len(jsonBenches), len(phases))
	}
}
