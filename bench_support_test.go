// Bench support: runtime/metrics sampling behind -fgmetrics, the
// shared fast-path fixture, the hot-path micro-benchmarks fgperf's
// tier-1 gate watches (ITC lookup, IPT packet scan), and the zero-alloc
// assertion over the //fg:hotpath fast path.
package flowguard_test

import (
	"flag"
	"runtime/metrics"
	"testing"

	"flowguard/internal/cfg"
	"flowguard/internal/itc"
	"flowguard/internal/trace/ipt"
)

// fgMetrics gates runtime/metrics sampling in the benchmarks. It is off
// by default because the extra metrics.Read calls, while outside the
// measured loop, still add artifact columns every run would then have
// to carry; fgperf -metrics turns it on (via `go test ... -args
// -fgmetrics`).
var fgMetrics = flag.Bool("fgmetrics", false, "report runtime/metrics deltas (GC cycles, GC CPU, heap allocations) from the benchmarks")

// benchMetrics captures cumulative runtime/metrics counters at the
// start of a benchmark invocation; report emits the per-op deltas. The
// deltas span the whole invocation (including any per-invocation setup
// before ResetTimer), so they are attribution hints, not exact costs.
type benchMetrics struct {
	samples []metrics.Sample
}

var benchMetricNames = []struct {
	name string // runtime/metrics key (cumulative counters only)
	unit string // reported benchmark unit
	toNs bool   // convert seconds → nanoseconds
}{
	{name: "/gc/cycles/total:gc-cycles", unit: "gc-cycles/op"},
	{name: "/cpu/classes/gc/total:cpu-seconds", unit: "gc-cpu-ns/op", toNs: true},
	{name: "/gc/heap/allocs:bytes", unit: "heap-alloc-B/op"},
}

// startBenchMetrics begins a sampling window; it returns nil (and
// report then no-ops) unless -fgmetrics is set.
func startBenchMetrics(b *testing.B) *benchMetrics {
	b.Helper()
	if !*fgMetrics {
		return nil
	}
	m := &benchMetrics{samples: make([]metrics.Sample, len(benchMetricNames))}
	for i := range m.samples {
		m.samples[i].Name = benchMetricNames[i].name
	}
	metrics.Read(m.samples)
	return m
}

// report emits the per-op metric deltas. Call it after the measured
// loop; the final (largest-N) invocation's values are the ones the
// testing framework keeps.
func (m *benchMetrics) report(b *testing.B) {
	b.Helper()
	if m == nil {
		return
	}
	after := make([]metrics.Sample, len(m.samples))
	copy(after, m.samples)
	metrics.Read(after)
	for i, spec := range benchMetricNames {
		var delta float64
		switch after[i].Value.Kind() {
		case metrics.KindUint64:
			delta = float64(after[i].Value.Uint64() - m.samples[i].Value.Uint64())
		case metrics.KindFloat64:
			delta = after[i].Value.Float64() - m.samples[i].Value.Float64()
		default:
			continue
		}
		if spec.toNs {
			delta *= 1e9
		}
		b.ReportMetric(delta/float64(b.N), spec.unit)
	}
}

// fastPathFixture builds the §7.2.2 fast-path inputs shared by
// BenchmarkFastPath and TestFastPathZeroAlloc: a ~100-TIP PSB-aligned
// trace window and the ITC-CFG it is checked against.
func fastPathFixture(tb testing.TB) ([]byte, *itc.Graph) {
	tb.Helper()
	window := microWindow(tb)
	pbAS, err := fx.perlbench.Load()
	if err != nil {
		tb.Fatal(err)
	}
	g, err := cfg.Build(pbAS)
	if err != nil {
		tb.Fatal(err)
	}
	return window, itc.FromCFG(g)
}

// --- hot-path micro-benchmarks (tier-1, gated) ------------------------------

// BenchmarkITCLookup isolates the trained-graph edge lookup — the two
// binary searches plus TNT-signature match that run once per TIP on the
// fast path (modeled by guard.CyclesPerTIPCheck).
func BenchmarkITCLookup(b *testing.B) {
	setup(b)
	evs, err := ipt.DecodeFast(fx.traceBuf)
	if err != nil {
		b.Fatal(err)
	}
	tips := ipt.ExtractTIPs(evs)
	if len(tips) < 2 {
		b.Fatal("trace has no TIP pairs")
	}
	m := startBenchMetrics(b)
	b.ReportAllocs()
	b.ResetTimer()
	exists := 0
	for i := 0; i < b.N; i++ {
		j := i % (len(tips) - 1)
		if fx.nginxITC.Lookup(tips[j].IP, tips[j+1].IP, tips[j+1].TNTSig).Exists {
			exists++
		}
	}
	b.StopTimer()
	if exists == 0 {
		b.Fatal("no lookup hit an existing edge — fixture is not exercising the trained graph")
	}
	m.report(b)
}

// BenchmarkIPTPacketScan isolates the packet-grammar scan layer: the
// WindowDecoder consuming a ~100-TIP window with no graph work at all
// (modeled by guard.CyclesPerFastDecodeByte).
func BenchmarkIPTPacketScan(b *testing.B) {
	window := microWindow(b)
	var dec ipt.WindowDecoder
	m := startBenchMetrics(b)
	b.SetBytes(int64(len(window)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset(0)
		if err := dec.Feed(window); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m.report(b)
}

// --- zero-alloc invariant ----------------------------------------------------

// TestFastPathZeroAlloc pins the //fg:hotpath allocation contract at
// runtime: the steady-state fast path — window scan (WindowDecoder
// Feed/Tips) plus per-TIP graph lookup — must run with zero heap
// allocations per check, exactly what BenchmarkFastPath's allocs/op
// column reports and what the hotpathalloc analyzer enforces
// statically. AllocsPerRun's warm-up call absorbs the one-time scratch
// growth, mirroring the guard keeping one decoder alive across checks.
func TestFastPathZeroAlloc(t *testing.T) {
	window, ig := fastPathFixture(t)
	var dec ipt.WindowDecoder
	var feedErr error
	allocs := testing.AllocsPerRun(50, func() {
		dec.Reset(0)
		if err := dec.Feed(window); err != nil {
			feedErr = err
			return
		}
		tips := dec.Tips()
		for j := 0; j+1 < len(tips); j++ {
			ig.Lookup(tips[j].IP, tips[j+1].IP, tips[j+1].TNTSig)
		}
	})
	if feedErr != nil {
		t.Fatal(feedErr)
	}
	if allocs != 0 {
		t.Fatalf("fast path allocated %.1f allocs/op in steady state, want 0 (hotpathalloc invariant)", allocs)
	}

	// Trained-graph flavor: after training and RebuildCache the lookups
	// route through the flat snapshot (eytzinger index + offset arenas);
	// the lock-free Lookup, the high-credit CacheLookup and the
	// path-sensitive probe must all stay allocation-free too.
	dec.Reset(0)
	if err := dec.Feed(window); err != nil {
		t.Fatal(err)
	}
	tips := dec.Tips()
	ig.ObserveWindow(tips) // train the edges the window itself exercises
	ig.RebuildCache()
	allocs = testing.AllocsPerRun(50, func() {
		for j := 0; j+1 < len(tips); j++ {
			ig.Lookup(tips[j].IP, tips[j+1].IP, tips[j+1].TNTSig)
			ig.CacheLookup(tips[j].IP, tips[j+1].IP, tips[j+1].TNTSig)
			if j+2 < len(tips) {
				ig.PathTrained(tips[j].IP, tips[j+1].IP, tips[j+2].IP)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("flat lookup path allocated %.1f allocs/op in steady state, want 0 (hotpathalloc invariant)", allocs)
	}
}
