package flowguard_test

import (
	"fmt"

	"flowguard"
)

// The complete pipeline: analyze a workload offline, train the labeled
// graph, run protected, and observe that nothing is flagged on benign
// traffic.
func Example() {
	w, err := flowguard.LoadWorkload("openssh")
	if err != nil {
		panic(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		panic(err)
	}
	if err := sys.TrainGenerated(4, 10, 1); err != nil {
		panic(err)
	}
	out, err := sys.Run(w.Input(10, 2))
	if err != nil {
		panic(err)
	}
	fmt.Println("exited:", out.Exited, "violations:", len(out.Violations))
	// Output:
	// exited: true violations: 0
}

// Attacks against the vulnerable server are killed at their first
// guarded syscall.
func ExampleAttackPayload() {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		panic(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		panic(err)
	}
	if err := sys.TrainGenerated(4, 10, 1); err != nil {
		panic(err)
	}
	payload, err := flowguard.AttackPayload(flowguard.AttackROP, w)
	if err != nil {
		panic(err)
	}
	out, err := sys.Run(payload)
	if err != nil {
		panic(err)
	}
	fmt.Println("killed:", out.Killed)
	// Output:
	// killed: true
}

// The offline analysis exposes the Table 4 statistics, including the
// AIA derogation the ITC-CFG reconstruction introduces and training
// repairs.
func ExampleSystem_Stats() {
	w, err := flowguard.LoadWorkload("vsftpd")
	if err != nil {
		panic(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		panic(err)
	}
	st := sys.Stats()
	fmt.Println("derogation:", st.ITCAIA > st.OCFGAIA)
	fmt.Println("fine-grained strongest:", st.FineAIA < st.OCFGAIA)
	// Output:
	// derogation: true
	// fine-grained strongest: true
}
