// Multiproc: the single-CR3-filter story of §6. Two servers share one
// core (one IPT trace unit); the kernel reprograms the unit's CR3 view
// at each context switch. The filter isolates the protected process's
// trace perfectly — and leaves the sibling entirely uncovered, which is
// why the paper asks for configurable multi-CR3 filtering hardware.
package main

import (
	"fmt"
	"log"

	"flowguard/internal/apps"
	"flowguard/internal/attack"
	"flowguard/internal/cfg"
	"flowguard/internal/guard"
	"flowguard/internal/itc"
	"flowguard/internal/kernelsim"
	"flowguard/internal/trace/ipt"
)

const ctl = ipt.CtlTraceEn | ipt.CtlBranchEn | ipt.CtlUser | ipt.CtlToPA

func main() {
	app := apps.Vulnd()

	// Offline phase once (the binaries are shared).
	as, err := app.Load()
	if err != nil {
		log.Fatal(err)
	}
	ocfg, err := cfg.Build(as)
	if err != nil {
		log.Fatal(err)
	}
	ig := itc.FromCFG(ocfg)
	training := []byte("G /index\nG /about\nP 16\n0123456789abcdefH /x\n")
	if err := train(app, ig, training); err != nil {
		log.Fatal(err)
	}

	payload, err := attack.BuildROPWrite(as)
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []struct {
		name         string
		attackTarget int // which worker gets the exploit
	}{
		{"exploit against the PROTECTED worker", 0},
		{"exploit against the UNPROTECTED sibling", 1},
	} {
		k := kernelsim.New()
		inputs := [][]byte{training, training}
		inputs[scenario.attackTarget] = payload
		pA, err := app.Spawn(k, inputs[0])
		if err != nil {
			log.Fatal(err)
		}
		pB, err := app.Spawn(k, inputs[1])
		if err != nil {
			log.Fatal(err)
		}

		// One core: a single trace unit, CR3-filtered to worker A.
		tr := ipt.NewTracer(ipt.NewToPA(16 << 10))
		if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl|ipt.CtlCR3Filter); err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteMSR(ipt.MSRRTITCR3Match, pA.CR3); err != nil {
			log.Fatal(err)
		}
		for _, p := range []*kernelsim.Process{pA, pB} {
			p.CPU.Branch = tr
		}
		k.OnSwitch = func(p *kernelsim.Process) { tr.SetCR3(p.CR3) }

		g := guard.New(pA.AS, ocfg, ig, tr, guard.DefaultPolicy())
		for _, sysno := range guard.DefaultEndpoints() {
			k.Intercept(sysno, func(p *kernelsim.Process, sysno uint64) error {
				if p != pA {
					return nil
				}
				if res := g.Check(); res.Verdict == guard.VerdictViolation {
					fmt.Printf("  guard: killed %s at %s: %s\n",
						p.Name, kernelsim.SyscallName(sysno), res.Reason)
					k.Kill(p, kernelsim.SIGKILL)
					return kernelsim.ErrKilled
				}
				return nil
			})
		}

		sts, err := k.RunInterleaved([]*kernelsim.Process{pA, pB}, 512, 500_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n  worker A (protected):  %v\n  worker B (sibling):    %v\n",
			scenario.name, sts[0], sts[1])
	}
	fmt.Println("\none CR3 filter covers one process — §6 suggestion 2 asks for more")
}

func train(app *apps.App, ig *itc.Graph, input []byte) error {
	k := kernelsim.New()
	p, err := app.Spawn(k, input)
	if err != nil {
		return err
	}
	tr := ipt.NewTracer(ipt.NewToPA(16 << 20))
	if err := tr.WriteMSR(ipt.MSRRTITCtl, ctl); err != nil {
		return err
	}
	p.CPU.Branch = tr
	if _, err := k.Run(p, 100_000_000); err != nil {
		return err
	}
	tr.Flush()
	evs, err := ipt.DecodeFast(tr.Out.Snapshot())
	if err != nil {
		return err
	}
	ig.ObserveWindow(ipt.ExtractTIPs(evs))
	ig.RebuildCache()
	return nil
}
