// Attacks: the full §7.1.2 matrix — ROP, SROP, return-to-lib and a
// history-flushing attempt against the vulnerable server, each validated
// unprotected and then detected under FlowGuard at the expected syscall
// endpoint.
package main

import (
	"fmt"
	"log"

	"flowguard"
)

func main() {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainGenerated(6, 25, 100); err != nil {
		log.Fatal(err)
	}

	kinds := []flowguard.AttackKind{
		flowguard.AttackROP,
		flowguard.AttackSROP,
		flowguard.AttackRet2Lib,
		flowguard.AttackHistoryFlush,
	}
	for _, kind := range kinds {
		payload, err := flowguard.AttackPayload(kind, w)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sys.Run(payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s killed=%v\n", kind, out.Killed)
		for _, v := range out.Violations {
			fmt.Println("   ", v)
		}
	}
}
