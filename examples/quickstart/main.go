// Quickstart: the complete FlowGuard pipeline on the nginx analogue in
// five steps — offline analysis, training, a protected benign run, and a
// look at the Table 2 trace-compression property along the way.
package main

import (
	"fmt"
	"log"

	"flowguard"
)

func main() {
	// 1. Pick a workload: a web server with its shared libraries.
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%s)\n", w.Name(), w.Category())

	// 2. Offline phase (§4): disassemble, build the conservative O-CFG,
	// collapse direct edges into the IPT-compatible ITC-CFG.
	sys, err := flowguard.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("analysis: %d functions, %d blocks, %d libraries\n",
		st.Functions, st.BasicBlocks, st.Libraries)
	fmt.Printf("          O-CFG AIA %.2f -> ITC-CFG |V|=%d |E|=%d AIA %.2f\n",
		st.OCFGAIA, st.ITCNodes, st.ITCEdges, st.ITCAIA)

	// 3. Training (§4.3): replay generated traffic under the IPT model
	// and label edges with credits + TNT signatures.
	if err := sys.TrainGenerated(6, 25, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: %.1f%% of ITC edges now high-credit\n",
		100*sys.Stats().CredRatio)

	// 4. Protected execution (§5): IPT traces the process, the kernel
	// module intercepts sensitive syscalls, the hybrid checker runs at
	// each endpoint.
	out, err := sys.Run(w.Input(25, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run:      exited=%v, %d responses bytes, %d checks (%d slow)\n",
		out.Exited, len(out.Stdout), out.Checks, out.SlowChecks)
	fmt.Printf("overhead: %.2f%% (trace %.2f%% + decode %.2f%% + check %.2f%% + other %.2f%%)\n",
		out.OverheadPct, out.Parts.Trace, out.Parts.Decode, out.Parts.Check, out.Parts.Other)

	// 5. Nothing was flagged — and the output matches an unprotected run.
	plain, err := flowguard.RunUnprotected(w, w.Input(25, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transparent: outputs identical = %v, violations = %d\n",
		string(plain) == string(out.Stdout), len(out.Violations))
}
