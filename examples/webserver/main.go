// Webserver: protecting the vulnerable server of §7.1.2. Benign traffic
// flows untouched; a classic ROP exploit against the implanted stack
// overflow is killed at the write syscall — while the same exploit
// demonstrably works when protection is off.
package main

import (
	"fmt"
	"log"

	"flowguard"
)

func main() {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainGenerated(6, 25, 100); err != nil {
		log.Fatal(err)
	}

	// Benign clients first.
	benign := w.Input(25, 3)
	out, err := sys.Run(benign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign traffic:  exited=%v, %d checks, %d violations, overhead %.2f%%\n",
		out.Exited, out.Checks, len(out.Violations), out.OverheadPct)

	// The exploit: overflow the upload handler's 64-byte stack buffer
	// with a gadget chain that opens a file and writes attacker data.
	payload, err := flowguard.AttackPayload(flowguard.AttackROP, w)
	if err != nil {
		log.Fatal(err)
	}

	// Unprotected, the chain reaches its goal.
	plain, _ := flowguard.RunUnprotected(w, payload)
	fmt.Printf("unprotected ROP: server %q survived the hijack silently (%d bytes out)\n",
		w.Name(), len(plain))

	// Protected, the hijack dies at its first sensitive syscall.
	out, err = sys.Run(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected ROP:   killed=%v\n", out.Killed)
	for _, v := range out.Violations {
		fmt.Println("  ", v)
	}
}
