// Fuzztrain: the dynamic training phase of §4.3 end to end — an
// AFL-style coverage-oriented campaign discovers inputs, the corpus is
// replayed under the IPT model to label ITC-CFG edges, and the runtime
// credibility ratio (Figure 5(d)) rises with fuzzing effort.
package main

import (
	"fmt"
	"log"

	"flowguard"
)

func main() {
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		log.Fatal(err)
	}
	seeds := [][]byte{
		[]byte("G /index\n"),
		[]byte("P 64\n"),
	}
	ref := w.Input(25, 7)

	fmt.Println("execs   corpus  paths  runtime-cred-ratio")
	for _, execs := range []int{25, 100, 400, 1200} {
		// A fresh system per checkpoint: train only with the corpus the
		// campaign found within this budget.
		sys, err := flowguard.Analyze(w)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := sys.TrainWithFuzzer(execs, seeds)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sys.Run(ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %5d  %5d  %.3f  (slow paths: %d/%d)\n",
			fs.Execs, fs.CorpusSize, fs.Paths, out.CredRatio, out.SlowChecks, out.Checks)
	}
	fmt.Println("\nhigher coverage -> more high-credit edges -> fewer slow paths (§7.2.3)")
}
