module flowguard

go 1.22
