package flowguard_test

import (
	"bytes"
	"strings"
	"testing"

	"flowguard"
)

func TestWorkloadRegistry(t *testing.T) {
	names := flowguard.Workloads()
	if len(names) != 21 { // 4 servers + 4 utilities + 12 spec + vulnd
		t.Fatalf("workloads = %d (%v), want 21", len(names), names)
	}
	for _, n := range names {
		w, err := flowguard.LoadWorkload(n)
		if err != nil {
			t.Fatalf("LoadWorkload(%s): %v", n, err)
		}
		if w.Name() != n || w.Category() == "" {
			t.Errorf("workload %s: name=%s category=%q", n, w.Name(), w.Category())
		}
		if len(w.Input(2, 1)) == 0 {
			t.Errorf("workload %s: empty input", n)
		}
	}
	if _, err := flowguard.LoadWorkload("no-such-app"); err == nil {
		t.Fatal("LoadWorkload accepted an unknown name")
	}
}

func TestAnalyzeTrainRunPipeline(t *testing.T) {
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Functions == 0 || st.BasicBlocks == 0 || st.ITCNodes == 0 || st.ITCEdges == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.ITCAIA < st.OCFGAIA {
		t.Errorf("no AIA derogation: ITC %.2f < O-CFG %.2f", st.ITCAIA, st.OCFGAIA)
	}
	if st.CredRatio != 0 {
		t.Errorf("untrained cred ratio = %v, want 0", st.CredRatio)
	}

	if err := sys.TrainGenerated(5, 15, 1); err != nil {
		t.Fatal(err)
	}
	trained := sys.Stats()
	if trained.CredRatio <= 0 {
		t.Fatal("training labeled no edges")
	}
	if trained.ITCAIAWithTNT <= 0 || trained.ITCAIAWithTNT >= trained.ITCAIA {
		t.Errorf("TNT AIA %.2f not below plain %.2f", trained.ITCAIAWithTNT, trained.ITCAIA)
	}

	out, err := sys.Run(w.Input(15, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Exited || out.Killed {
		t.Fatalf("benign run: %+v", out)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("false positives: %v", out.Violations)
	}
	if out.Checks == 0 {
		t.Fatal("no endpoint checks")
	}
	if out.OverheadPct <= 0 || out.OverheadPct > 30 {
		t.Errorf("overhead %.2f%%, want small positive", out.OverheadPct)
	}
	sum := out.Parts.Trace + out.Parts.Decode + out.Parts.Check + out.Parts.Other
	if diff := out.OverheadPct - sum; diff > 0.01 || diff < -0.01 {
		t.Errorf("breakdown %.3f does not sum to total %.3f", sum, out.OverheadPct)
	}

	// Functional equivalence: protection must not change the output.
	plain, err := flowguard.RunUnprotected(w, w.Input(15, 9))
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(out.Stdout) {
		t.Error("protected output differs from unprotected output")
	}
}

func TestAttackPipeline(t *testing.T) {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(5, 15, 1); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []flowguard.AttackKind{
		flowguard.AttackROP, flowguard.AttackSROP,
		flowguard.AttackRet2Lib, flowguard.AttackHistoryFlush,
	} {
		payload, err := flowguard.AttackPayload(kind, w)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		out, err := sys.Run(payload)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !out.Killed {
			t.Errorf("%s: not killed", kind)
		}
		if len(out.Violations) == 0 || !strings.Contains(out.Violations[0], "CFI violation") {
			t.Errorf("%s: missing violation report: %v", kind, out.Violations)
		}
	}
	if _, err := flowguard.AttackPayload("nope", w); err == nil {
		t.Fatal("AttackPayload accepted an unknown kind")
	}
}

func TestSaveLoadTrained(t *testing.T) {
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(4, 10, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTrained(&buf); err != nil {
		t.Fatal(err)
	}

	fresh, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats().CredRatio != 0 {
		t.Fatal("fresh system already trained")
	}
	if err := fresh.LoadTrained(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Stats().CredRatio, sys.Stats().CredRatio; got != want {
		t.Fatalf("restored cred ratio %v, want %v", got, want)
	}
	out, err := fresh.Run(w.Input(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Exited || len(out.Violations) != 0 {
		t.Fatalf("run with restored graph: %+v", out)
	}

	// A graph from different binaries is rejected.
	other, err := flowguard.LoadWorkload("vsftpd")
	if err != nil {
		t.Fatal(err)
	}
	osys, err := flowguard.Analyze(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := osys.LoadTrained(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadTrained accepted a graph from different binaries")
	}
}

func TestEndpointPruningAttackKind(t *testing.T) {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(4, 15, 1); err != nil {
		t.Fatal(err)
	}
	payload, err := flowguard.AttackPayload(flowguard.AttackEndpointPruning, w)
	if err != nil {
		t.Fatal(err)
	}
	// Escapes the default endpoints...
	out, err := sys.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed {
		t.Fatalf("pruning attack killed under default policy: %v", out.Violations)
	}
	// ...but not the PMI fallback.
	pol := flowguard.DefaultPolicy()
	pol.CheckOnPMI = true
	out, err = sys.RunWithPolicy(payload, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Killed || len(out.Violations) == 0 {
		t.Fatalf("PMI policy missed the pruning attack: %+v", out)
	}
	if !strings.Contains(out.Violations[0], "PMI") {
		t.Errorf("violation not PMI-labeled: %v", out.Violations[0])
	}
}

func TestTrainWithFuzzer(t *testing.T) {
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sys.TrainWithFuzzer(200, [][]byte{[]byte("G /index\n"), []byte("P 64\n")})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Execs < 200 || fs.CorpusSize < 2 || fs.Paths == 0 {
		t.Fatalf("fuzz stats: %+v", fs)
	}
	if sys.Stats().CredRatio <= 0 {
		t.Fatal("fuzzer training labeled nothing")
	}
}

func TestRunMulti(t *testing.T) {
	w, err := flowguard.LoadWorkload("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(5, 15, 1); err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{w.Input(12, 3), w.Input(12, 4), w.Input(12, 5), w.Input(12, 6)}
	mo, err := sys.RunMulti(inputs, flowguard.DefaultPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mo.Outcomes) != len(inputs) {
		t.Fatalf("outcomes = %d, want %d", len(mo.Outcomes), len(inputs))
	}
	if mo.Workers != 2 {
		t.Fatalf("workers = %d, want 2", mo.Workers)
	}
	var sum uint64
	for i, o := range mo.Outcomes {
		if !o.Exited || o.Killed {
			t.Fatalf("process %d: %+v", i, o)
		}
		if len(o.Violations) != 0 {
			t.Fatalf("process %d false positives: %v", i, o.Violations)
		}
		if o.Checks == 0 {
			t.Fatalf("process %d ran no checks", i)
		}
		sum += o.Checks
		// Parallel runs must not change program behavior.
		plain, err := flowguard.RunUnprotected(w, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(o.Stdout) {
			t.Errorf("process %d output differs from unprotected run", i)
		}
	}
	if mo.Checks != sum {
		t.Fatalf("aggregate checks %d != per-process sum %d", mo.Checks, sum)
	}
	if len(mo.Violations) != 0 {
		t.Fatalf("aggregate false positives: %v", mo.Violations)
	}
}

func TestRunMultiDetectsAttackAmongBenign(t *testing.T) {
	w, err := flowguard.LoadWorkload("vulnd")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(5, 15, 1); err != nil {
		t.Fatal(err)
	}
	payload, err := flowguard.AttackPayload(flowguard.AttackROP, w)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{w.Input(12, 3), payload, w.Input(12, 4)}
	mo, err := sys.RunMulti(inputs, flowguard.DefaultPolicy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mo.Outcomes[1].Killed || len(mo.Outcomes[1].Violations) == 0 {
		t.Fatalf("attacked process survived: %+v", mo.Outcomes[1])
	}
	for _, i := range []int{0, 2} {
		o := mo.Outcomes[i]
		if o.Killed || len(o.Violations) != 0 {
			t.Fatalf("benign process %d harmed by sibling's attack: %+v", i, o)
		}
	}
}

func TestPolicyKnobs(t *testing.T) {
	w, _ := flowguard.LoadWorkload("nginx")
	sys, err := flowguard.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainGenerated(4, 10, 1); err != nil {
		t.Fatal(err)
	}
	small := flowguard.DefaultPolicy()
	small.PktCount = 10
	big := flowguard.DefaultPolicy()
	big.PktCount = 90
	outS, err := sys.RunWithPolicy(w.Input(10, 5), small)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := sys.RunWithPolicy(w.Input(10, 5), big)
	if err != nil {
		t.Fatal(err)
	}
	if outB.Parts.Check <= outS.Parts.Check {
		t.Errorf("pkt_count=90 check share %.2f%% <= pkt_count=10 %.2f%%", outB.Parts.Check, outS.Parts.Check)
	}
	hw := flowguard.DefaultPolicy()
	hw.HWDecoder = true
	outHW, err := sys.RunWithPolicy(w.Input(10, 5), hw)
	if err != nil {
		t.Fatal(err)
	}
	outSW, err := sys.RunWithPolicy(w.Input(10, 5), flowguard.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if outHW.Parts.Decode >= outSW.Parts.Decode {
		t.Errorf("HW decoder share %.3f%% >= SW %.3f%%", outHW.Parts.Decode, outSW.Parts.Decode)
	}
}
